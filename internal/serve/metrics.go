package serve

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"time"

	"repro/internal/stats"
)

// latencyBuckets are the upper bounds (exclusive) of the request latency
// histogram, in milliseconds, doubling from 1ms; the last bucket is
// unbounded.
var latencyBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// LatencyBucket is one histogram cell of the snapshot.
type LatencyBucket struct {
	// UpperMs is the exclusive upper bound in milliseconds; 0 means +Inf.
	UpperMs int64
	Count   int64
}

// ProgramStats is the aggregated record of every completed session of one
// program.
type ProgramStats struct {
	Runs     int64
	Counters stats.Counters
	Metrics  stats.Metrics
	// Breaker is the program's churn-breaker state ("closed", "open",
	// "half-open"), or "" when the breaker is disabled or has never seen
	// the program.
	Breaker string
}

// Snapshot is a point-in-time, self-contained copy of the service's
// aggregated observability: request accounting, the global merged counters
// and their derived §5.2 metrics, per-program aggregates, registry state,
// and the request latency histogram. It shares no memory with the live
// service and is safe to retain or serialize.
type Snapshot struct {
	// Request accounting. Accepted = enqueued; of those, exactly one of
	// Completed, Failed, or TimedOut is eventually counted per request.
	Accepted  int64
	Rejected  int64 // refused with ErrQueueFull (backpressure)
	Completed int64
	Failed    int64 // run error, compile errors are not enqueued
	TimedOut  int64 // cancelled by deadline or caller context
	Panics    int64 // recovered worker panics (also counted in Failed)
	// CompileErrors counts requests refused because their program did not
	// compile; they are never enqueued.
	CompileErrors int64
	// ProgramsRejected counts requests refused because their program failed
	// bytecode verification (a subset of registration failures, reported
	// separately from CompileErrors); they are never enqueued.
	ProgramsRejected int64
	// Quarantined counts requests refused with ErrQuarantined; they are
	// never enqueued.
	Quarantined int64

	// Churn-breaker accounting, summed over all per-program breakers.
	BreakerTrips   int64 // transitions into the open state
	BreakerDemoted int64 // profiled runs forced down to plain dispatch
	BreakerProbes  int64 // half-open probe runs admitted
	// OpenBreakers/HalfOpenBreakers count programs currently in each
	// non-closed state; QuarantinedPrograms counts programs past the panic
	// threshold.
	OpenBreakers        int
	HalfOpenBreakers    int
	QuarantinedPrograms int

	// Pool state at snapshot time. Draining is set once Close has begun.
	QueueDepth int
	QueueCap   int
	Workers    int
	Draining   bool

	// Event-trace state: ring capacity (0 = tracing disabled), events
	// currently held, and events ever emitted (the excess over held is
	// overwritten history).
	EventCap    int
	EventsHeld  int
	EventsTotal uint64

	// Registry state.
	Programs       int
	RegistryHits   int64
	RegistryMisses int64

	// RecordedRequests is the number of submissions captured by the
	// record/replay tap (0 when Config.Recorder is unset).
	RecordedRequests int64

	// Profile-persistence state (zero when Config.SnapshotDir is unset):
	// programs holding a warm snapshot, and programs whose learning deltas
	// await the coalescing writer's next commit.
	SnapshotPrograms int
	SnapshotsPending int

	// Sharded-profiling state (zero when Config.EpochRuns is negative):
	// programs with a shard set, live per-worker shards, completed epoch
	// merges, and the total shards absorbed across those merges.
	ShardPrograms int
	LiveShards    int
	EpochMerges   int64
	ShardsMerged  int64

	// Global is every completed session's Counters merged via Add; the
	// embedded stats.Metrics are its derived §5.2 values, so a Snapshot and
	// a repro.VM expose the same Metrics shape under the same name.
	Global stats.Counters
	stats.Metrics
	// PerProgram aggregates by Compiled.Name.
	PerProgram map[string]ProgramStats

	// Latency is the accepted-to-finished request latency histogram.
	Latency      []LatencyBucket
	TotalLatency time.Duration
}

// MarshalJSON serializes the snapshot field by field, in declaration order.
// It exists because the embedded stats.Metrics carries a promoted
// MarshalJSON that would otherwise hijack the whole snapshot's
// serialization, reducing /v1/stats to the six metric ratios; here the
// embedded field marshals (through its own method, which null-protects the
// non-finite ratios) under the key "Metrics" like any named field.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	v := reflect.ValueOf(s)
	t := v.Type()
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i := 0; i < t.NumField(); i++ {
		b, err := json.Marshal(v.Field(i).Interface())
		if err != nil {
			return nil, err
		}
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteByte('"')
		buf.WriteString(t.Field(i).Name)
		buf.WriteString(`":`)
		buf.Write(b)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// aggregator is the mutable heart of the snapshot: a mutex-protected merge
// of per-session counters plus service-level request accounting. Sessions
// run without any shared mutable state; aggregation happens once per
// request at completion, so the lock is uncontended in any realistic load.
type aggregator struct {
	mu           sync.Mutex
	accepted     int64
	rejected     int64
	completed    int64
	failed       int64
	timedOut     int64
	panics       int64
	compileErr   int64
	verifyRejct  int64
	quarantRejct int64
	global       stats.Counters
	perProgram   map[string]*programAgg
	latency      []int64 // len(latencyBuckets)+1, last is overflow
	totalLat     time.Duration
}

type programAgg struct {
	runs int64
	ctr  stats.Counters
}

func newAggregator() *aggregator {
	return &aggregator{
		perProgram: make(map[string]*programAgg),
		latency:    make([]int64, len(latencyBuckets)+1),
	}
}

func (a *aggregator) accept() {
	a.mu.Lock()
	a.accepted++
	a.mu.Unlock()
}

func (a *aggregator) reject() {
	a.mu.Lock()
	a.rejected++
	a.mu.Unlock()
}

func (a *aggregator) compileError() {
	a.mu.Lock()
	a.compileErr++
	a.mu.Unlock()
}

func (a *aggregator) verifyReject() {
	a.mu.Lock()
	a.verifyRejct++
	a.mu.Unlock()
}

func (a *aggregator) quarantined() {
	a.mu.Lock()
	a.quarantRejct++
	a.mu.Unlock()
}

func (a *aggregator) observeLatency(d time.Duration) {
	ms := d.Milliseconds()
	i := 0
	for i < len(latencyBuckets) && ms >= latencyBuckets[i] {
		i++
	}
	a.latency[i]++
	a.totalLat += d
}

// complete merges one successful session into the per-program and global
// totals. ctr is a quiescent-point snapshot (the session has finished).
func (a *aggregator) complete(program string, ctr *stats.Counters, lat time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.completed++
	a.global.Add(ctr)
	p := a.perProgram[program]
	if p == nil {
		p = &programAgg{}
		a.perProgram[program] = p
	}
	p.runs++
	p.ctr.Add(ctr)
	a.observeLatency(lat)
}

func (a *aggregator) fail(lat time.Duration, panicked bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.failed++
	if panicked {
		a.panics++
	}
	a.observeLatency(lat)
}

// globalMetrics derives the §5.2 values from the live global counters —
// the Service.Metrics accessor, mirroring core.Session.Metrics.
func (a *aggregator) globalMetrics() stats.Metrics {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.global.Derive()
}

func (a *aggregator) timeout(lat time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.timedOut++
	a.observeLatency(lat)
}

// snapshot deep-copies the aggregate state; pool/registry fields are filled
// in by the Service.
func (a *aggregator) snapshot() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Snapshot{
		Accepted:         a.accepted,
		Rejected:         a.rejected,
		Completed:        a.completed,
		Failed:           a.failed,
		TimedOut:         a.timedOut,
		Panics:           a.panics,
		CompileErrors:    a.compileErr,
		ProgramsRejected: a.verifyRejct,
		Quarantined:      a.quarantRejct,
		Global:           a.global.Snapshot(),
		Metrics:          a.global.Derive(),
		PerProgram:       make(map[string]ProgramStats, len(a.perProgram)),
		TotalLatency:     a.totalLat,
	}
	for name, p := range a.perProgram {
		s.PerProgram[name] = ProgramStats{
			Runs:     p.runs,
			Counters: p.ctr.Snapshot(),
			Metrics:  p.ctr.Derive(),
		}
	}
	s.Latency = make([]LatencyBucket, len(a.latency))
	for i, n := range a.latency {
		var upper int64
		if i < len(latencyBuckets) {
			upper = latencyBuckets[i]
		}
		s.Latency[i] = LatencyBucket{UpperMs: upper, Count: n}
	}
	return s
}
