package serve

import (
	"context"

	"repro/internal/replay"
)

// This file is the serving layer's record/replay seam: requests tap into a
// replay.Recorder at submission, and a recorded log replays through the
// same Do path that live traffic takes.

// RecordFromRequest converts a submitted request into its log record. key is
// the resolved registry content key (recorded for correlation; replay
// re-resolves from the program reference).
func RecordFromRequest(req Request, key string) replay.Record {
	rec := replay.Record{
		Key:           key,
		Mode:          req.Mode,
		Threshold:     req.Threshold,
		StartDelay:    req.StartDelay,
		DecayInterval: req.DecayInterval,
		MaxSteps:      req.MaxSteps,
		Timeout:       req.Timeout,
	}
	if req.Workload != "" {
		rec.Kind = replay.RefWorkload
		rec.Workload = req.Workload
	} else {
		rec.Source = req.Source
		switch req.Kind {
		case KindJasm:
			rec.Kind = replay.RefJasm
		default:
			rec.Kind = replay.RefMiniJava
		}
	}
	return rec
}

// RequestFromRecord converts a log record back into the request it was
// recorded from.
func RequestFromRecord(rec replay.Record) Request {
	req := Request{
		Mode:          rec.Mode,
		Threshold:     rec.Threshold,
		StartDelay:    rec.StartDelay,
		DecayInterval: rec.DecayInterval,
		MaxSteps:      rec.MaxSteps,
		Timeout:       rec.Timeout,
	}
	switch rec.Kind {
	case replay.RefWorkload:
		req.Workload = rec.Workload
	case replay.RefJasm:
		req.Source, req.Kind = rec.Source, KindJasm
	default:
		req.Source, req.Kind = rec.Source, KindMiniJava
	}
	return req
}

// record taps one resolved submission into the configured recorder; a nil
// recorder (the production default) is a no-op. Recording what was *offered*
// — before the enqueue attempt — is the point: a log must reproduce the
// storm including the traffic the service refused under backpressure.
func (s *Service) record(req Request, key string) {
	_ = s.cfg.Recorder.Record(RecordFromRequest(req, key))
}

// Replay re-offers a recorded log through the service's normal submission
// path, honoring recorded arrival gaps scaled by opts.Scale. Requests the
// service refuses (backpressure, quarantine) count as failures in the
// result, exactly as they would for live clients.
func (s *Service) Replay(ctx context.Context, l *replay.Log, opts replay.PlayOptions) (replay.PlayResult, error) {
	return replay.Play(ctx, l, opts, func(ctx context.Context, rec replay.Record) error {
		_, err := s.Do(ctx, RequestFromRecord(rec))
		return err
	})
}
