package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/snapshot"
)

// epochLoopSource is a deterministic 2000-iteration loop with a known
// output — enough dispatches for shards to converge and build traces.
const epochLoopSource = `class Main { static void main() { int i = 0; int s = 0; while (i < 2000) { s = s + i; i = i + 1; } Sys.printlnInt(s); } }`

const epochLoopOutput = "1999000\n"

// TestEpochShardsDisjointPrograms runs several distinct programs concurrently
// through a sharded service: every worker learns each program in its private
// shard, outputs stay correct, and the coordinator tracks one shard set per
// program. Run under -race this proves shard learning never crosses a
// goroutine boundary outside the coordinator's locks.
func TestEpochShardsDisjointPrograms(t *testing.T) {
	const programs = 4
	const perProgram = 6
	src := func(p int) string {
		return fmt.Sprintf(
			`class Main { static void main() { int i = 0; int s = 0; while (i < 1000) { s = s + i; i = i + 1; } Sys.printlnInt(s + %d); } }`, p)
	}
	want := func(p int) string { return fmt.Sprintf("%d\n", 499500+p) }

	s := newTestService(t, Config{Workers: 4, QueueDepth: programs * perProgram, EpochRuns: 2})
	var wg sync.WaitGroup
	for p := 0; p < programs; p++ {
		for i := 0; i < perProgram; i++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				resp, err := s.Do(context.Background(), Request{Source: src(p), Mode: core.ModeTrace})
				if err != nil {
					t.Errorf("program %d: %v", p, err)
					return
				}
				if resp.Output != want(p) {
					t.Errorf("program %d output = %q, want %q", p, resp.Output, want(p))
				}
			}(p)
		}
	}
	wg.Wait()

	snap := s.Stats()
	if snap.ShardPrograms != programs {
		t.Errorf("ShardPrograms = %d, want %d", snap.ShardPrograms, programs)
	}
	if snap.LiveShards < programs {
		t.Errorf("LiveShards = %d, want >= %d (each program learned on at least one shard)",
			snap.LiveShards, programs)
	}
	if snap.EpochMerges == 0 {
		t.Error("no epoch merges despite every program exceeding its quota")
	}
	if snap.ShardsMerged < snap.EpochMerges {
		t.Errorf("ShardsMerged = %d < EpochMerges = %d; merges absorbed nothing",
			snap.ShardsMerged, snap.EpochMerges)
	}
}

// TestEpochShardsOverlappingProgram hammers one program from many clients at
// once — the shards overlap on the same learned structure — and checks the
// merged export the snapshot writer would commit: globally derived state with
// nodes and promoted traces, surviving the wire codec.
func TestEpochShardsOverlappingProgram(t *testing.T) {
	s := newTestService(t, Config{Workers: 4, QueueDepth: 32, EpochRuns: 4})
	const n = 24
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Do(context.Background(), Request{Source: epochLoopSource, Mode: core.ModeTrace})
			if err != nil {
				t.Error(err)
				return
			}
			if resp.Output != epochLoopOutput {
				t.Errorf("output = %q, want %q", resp.Output, epochLoopOutput)
			}
		}()
	}
	wg.Wait()

	snap := s.Stats()
	if snap.ShardPrograms != 1 {
		t.Errorf("ShardPrograms = %d, want 1", snap.ShardPrograms)
	}
	if snap.EpochMerges == 0 {
		t.Fatalf("no epoch merges after %d runs with quota 4", n)
	}

	comp, err := s.Registry().Source(KindMiniJava, epochLoopSource)
	if err != nil {
		t.Fatal(err)
	}
	exported := s.epochs.exportForCommit(comp.Key, true)
	if exported == nil {
		t.Fatal("exportForCommit returned nothing for a merged program")
	}
	if exported.ProgramKey != comp.Key {
		t.Errorf("export key = %q, want %q", exported.ProgramKey, comp.Key)
	}
	if len(exported.Nodes) == 0 || len(exported.Traces) == 0 {
		t.Fatalf("merged export learned nothing: %d nodes, %d traces",
			len(exported.Nodes), len(exported.Traces))
	}
	if _, err := snapshot.Decode(snapshot.Encode(exported)); err != nil {
		t.Errorf("merged export does not survive the codec: %v", err)
	}
	// Unknown programs yield nil, not a phantom set.
	if got := s.epochs.exportForCommit("no-such-key", true); got != nil {
		t.Errorf("export for unknown key = %+v, want nil", got)
	}
}

// TestEpochMergeEqualsSingleWorkerState is the merge-equivalence property at
// the service level: the merged view of a 4-worker service that split the
// traffic across shards classifies branches identically to a 1-worker
// service that saw every run on one shard, and promotes the same traces.
// (Raw counters differ with per-shard decay timing; the unique<->strong flip
// is a non-change, so the comparison is the correlated bit plus the
// predicted successor — exactly what the trace cache consumes.)
func TestEpochMergeEqualsSingleWorkerState(t *testing.T) {
	learned := func(workers int) *snapshot.Snapshot {
		s := newTestService(t, Config{Workers: workers, QueueDepth: 32, EpochRuns: 4})
		const n = 16
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := s.Do(context.Background(), Request{Source: epochLoopSource, Mode: core.ModeTrace}); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		comp, err := s.Registry().Source(KindMiniJava, epochLoopSource)
		if err != nil {
			t.Fatal(err)
		}
		snap := s.epochs.exportForCommit(comp.Key, true)
		if snap == nil {
			t.Fatalf("%d workers: no merged state", workers)
		}
		decoded, err := snapshot.Decode(snapshot.Encode(snap))
		if err != nil {
			t.Fatalf("%d workers: codec: %v", workers, err)
		}
		return decoded
	}

	multi := learned(4)
	single := learned(1)

	if len(multi.Traces) != len(single.Traces) {
		t.Errorf("merged traces = %d, single-worker = %d", len(multi.Traces), len(single.Traces))
	}
	if len(multi.Nodes) != len(single.Nodes) {
		t.Errorf("merged nodes = %d, single-worker = %d", len(multi.Nodes), len(single.Nodes))
	}
	type class struct {
		correlated bool
		best       cfg.BlockID
	}
	states := func(ns []profile.NodeSnapshot) map[[2]cfg.BlockID]class {
		m := make(map[[2]cfg.BlockID]class, len(ns))
		for _, n := range ns {
			c := class{correlated: n.State.Correlated()}
			if c.correlated {
				c.best = n.Best
			}
			m[[2]cfg.BlockID{n.X, n.Y}] = c
		}
		return m
	}
	ms, ss := states(multi.Nodes), states(single.Nodes)
	for k, v := range ss {
		if ms[k] != v {
			t.Errorf("node %v classifies as %+v merged, %+v single-worker", k, ms[k], v)
		}
	}
}

// TestEpochParamsMismatchFallsBack: a request whose profiler parameters
// differ from the ones a program's shards were built with must not pollute
// the shards — it runs isolated and the shard set keeps its parameters.
func TestEpochParamsMismatchFallsBack(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 8, EpochRuns: 2})
	base := Request{Source: epochLoopSource, Mode: core.ModeTrace}
	if _, err := s.Do(context.Background(), base); err != nil {
		t.Fatal(err)
	}
	odd := base
	odd.Threshold, odd.StartDelay, odd.DecayInterval = 0.5, 2, 32
	resp, err := s.Do(context.Background(), odd)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Output != epochLoopOutput {
		t.Errorf("mismatched-params run output = %q, want %q", resp.Output, epochLoopOutput)
	}
	// The isolated run built its own profiler from scratch.
	if resp.Counters.NodesCreated == 0 {
		t.Error("mismatched-params run reused shard state")
	}
	if snap := s.Stats(); snap.LiveShards != 1 {
		t.Errorf("LiveShards = %d, want 1 (mismatch must not add shards)", snap.LiveShards)
	}
}

// TestEpochDisabledKeepsLegacyPath: EpochRuns < 0 switches sharding off
// entirely — every profiled run is isolated, and the gauges stay zero.
func TestEpochDisabledKeepsLegacyPath(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueDepth: 8, EpochRuns: -1})
	for i := 0; i < 3; i++ {
		resp, err := s.Do(context.Background(), Request{Source: epochLoopSource, Mode: core.ModeTrace})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Output != epochLoopOutput {
			t.Fatalf("output = %q", resp.Output)
		}
		// Isolated runs relearn everything each time.
		if resp.Counters.NodesCreated == 0 {
			t.Error("isolated run created no nodes")
		}
	}
	snap := s.Stats()
	if snap.ShardPrograms != 0 || snap.LiveShards != 0 || snap.EpochMerges != 0 {
		t.Errorf("sharding gauges nonzero with EpochRuns=-1: %+v",
			[3]int64{int64(snap.ShardPrograms), int64(snap.LiveShards), snap.EpochMerges})
	}
}
