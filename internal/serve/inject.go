package serve

import (
	"repro/internal/core"
	"repro/internal/vm"
)

// Injector is the fault-injection seam. The service consults it (when
// non-nil) at three points of a job's life; production deployments leave
// Config.Injector nil and the only cost is a nil check per run.
//
// Implementations live in internal/faultinject; the interface is defined
// here so the service does not depend on the chaos harness.
type Injector interface {
	// BeforeExec runs on the worker goroutine just before the session is
	// built. Panicking here exercises the panic-recovery and quarantine
	// paths exactly like a VM bug would.
	BeforeExec(req Request)
	// WrapDispatch may wrap the machine's dispatch hook to delay or observe
	// block transitions. Returning the argument unchanged is a no-op; the
	// hook may be nil in unprofiled modes.
	WrapDispatch(h vm.DispatchHook) vm.DispatchHook
	// AfterRun runs after the program finishes but before counters are
	// snapshotted, with the live session. The signal-storm injector uses it
	// to slam the profiler with adversarial dispatch streams so the churn
	// becomes visible to the breaker.
	AfterRun(req Request, sess *core.Session)
}

// InjectorFuncs adapts up to three plain functions to Injector; nil fields
// are no-ops. Tests use it for one-off hooks without a named type.
type InjectorFuncs struct {
	Exec  func(req Request)
	Wrap  func(h vm.DispatchHook) vm.DispatchHook
	After func(req Request, sess *core.Session)
}

func (f InjectorFuncs) BeforeExec(req Request) {
	if f.Exec != nil {
		f.Exec(req)
	}
}

func (f InjectorFuncs) WrapDispatch(h vm.DispatchHook) vm.DispatchHook {
	if f.Wrap != nil {
		return f.Wrap(h)
	}
	return h
}

func (f InjectorFuncs) AfterRun(req Request, sess *core.Session) {
	if f.After != nil {
		f.After(req, sess)
	}
}
