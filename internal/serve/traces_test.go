package serve

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestTraceInventoryTier2 hammers one program through a sharded service with
// tier-2 compilation enabled: outputs stay correct under -race, the
// per-program inventory reports promoted traces with a compiled-dispatch
// share, and the program-wide compiled store hash-conses lowered forms
// across shards (one Program per block sequence, never one per shard).
func TestTraceInventoryTier2(t *testing.T) {
	s := newTestService(t, Config{
		Workers:    4,
		QueueDepth: 32,
		EpochRuns:  4,
		TraceCache: core.Config{CompileTraces: true, TierUpDispatches: 4},
	})
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Do(context.Background(), Request{Source: epochLoopSource, Mode: core.ModeTrace})
			if err != nil {
				t.Error(err)
				return
			}
			if resp.Output != epochLoopOutput {
				t.Errorf("output = %q, want %q", resp.Output, epochLoopOutput)
			}
		}()
	}
	wg.Wait()

	inv := s.TraceInventory()
	if len(inv) != 1 {
		t.Fatalf("inventory covers %d programs, want 1", len(inv))
	}
	p := inv[0]
	if len(p.Traces) == 0 {
		t.Fatal("inventory holds no traces after 16 traced runs")
	}
	var promoted bool
	for _, r := range p.Traces {
		if r.Blocks < 2 || r.Shards < 1 || r.Entered < r.Completed {
			t.Errorf("malformed record: %+v", r)
		}
		if r.EstimatedGuards+r.ProvenGuards != r.Blocks-1 {
			t.Errorf("guard split %d proven + %d estimated != %d positions",
				r.ProvenGuards, r.EstimatedGuards, r.Blocks-1)
		}
		if r.Tier == 2 {
			promoted = true
			if r.CompiledEntered == 0 {
				t.Errorf("tier-2 trace never dispatched compiled: %+v", r)
			}
		}
	}
	if !promoted {
		t.Error("no trace promoted to tier 2 with TierUpDispatches=4")
	}

	// The shared store holds at most one compiled form per logical trace.
	comp, err := s.Registry().Source(KindMiniJava, epochLoopSource)
	if err != nil {
		t.Fatal(err)
	}
	s.epochs.mu.Lock()
	set := s.epochs.sets[comp.Key]
	s.epochs.mu.Unlock()
	if set == nil || set.compiled == nil {
		t.Fatal("shard set has no shared compiled store with CompileTraces on")
	}
	if got := set.compiled.Len(); got == 0 || got > len(p.Traces) {
		t.Errorf("compiled store holds %d programs for %d logical traces", got, len(p.Traces))
	}
	if stats := s.Stats(); stats.Global.TracesCompiled == 0 || stats.Global.CompiledDispatches == 0 {
		t.Errorf("global counters missed tier-2 work: compiled=%d dispatches=%d",
			stats.Global.TracesCompiled, stats.Global.CompiledDispatches)
	}
}

// TestTraceInventoryDisabled: with sharding off there is no retained
// inventory, and the accessor reports that as nil rather than inventing one.
func TestTraceInventoryDisabled(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, EpochRuns: -1})
	if _, err := s.Do(context.Background(), Request{Source: epochLoopSource, Mode: core.ModeTrace}); err != nil {
		t.Fatal(err)
	}
	if inv := s.TraceInventory(); inv != nil {
		t.Errorf("inventory without sharding = %+v, want nil", inv)
	}
}
