package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/workload"
)

func defaultWorkloads() []string { return workload.Names() }

// Runner executes one request. Service.Do is a Runner; cmd/tracevmd wraps
// an HTTP client into one, so the same load generator drives both an
// embedded service and a remote daemon.
type Runner func(ctx context.Context, req Request) (*Response, error)

// LoadGenConfig shapes a load-generation run.
type LoadGenConfig struct {
	// Concurrency is the number of client goroutines (default 4).
	Concurrency int
	// Requests is the total request count (default 2×Concurrency).
	Requests int
	// Workloads are cycled through round-robin (default: all built-ins).
	Workloads []string
	// Mode applies to every request (but see WriteFrac).
	Mode core.Mode
	// MaxSteps bounds each request (0 = unlimited).
	MaxSteps int64
	// Retry, when non-nil, retries backpressure rejections with jittered
	// exponential backoff instead of counting them as failures. Each
	// request derives its jitter stream from Retry.Seed and its index, so
	// concurrent clients spread out deterministically.
	Retry *Backoff

	// Skew, when > 1, draws each request's workload from a zipf
	// distribution with this exponent instead of cycling round-robin:
	// Workloads[0] is the most popular program, the tail rarely runs. Real
	// program popularity is zipfian, and the skew concentrates requests on
	// few registry entries — the contention-adversarial case for any shared
	// per-program state. Values <= 1 keep the uniform round-robin draw
	// (math/rand's zipf requires an exponent above 1).
	Skew float64
	// HotRatio, when > 0, sends this fraction of requests to Workloads[0]
	// outright (a hot key), on top of whatever Skew draws. 1.0 hammers a
	// single program from every client.
	HotRatio float64
	// WriteFrac, when in (0, 1), runs only this fraction of requests in
	// Mode and demotes the rest to plain block dispatch. Profiled runs
	// mutate their program's learned state ("writes"); plain runs only
	// execute ("reads"). Mixing them reproduces a read-mostly service where
	// occasional learning must not stall the read path. 0 (and 1) run
	// everything in Mode.
	WriteFrac float64
	// Seed makes the Skew/HotRatio/WriteFrac draws deterministic; each
	// client goroutine derives an independent stream from it (default 1).
	Seed uint64
	// Recorder, when non-nil, captures every generated request as it is
	// issued, so a load-generation run doubles as a traffic-log author. When
	// the generator drives a remote daemon this is the only tap: the client
	// side sees the offered stream, whatever the server makes of it.
	Recorder *replay.Recorder
}

// LoadGenResult summarizes a load-generation run.
type LoadGenResult struct {
	Requests  int
	Completed int64
	Failed    int64
	Rejected  int64 // failures that were ErrQueueFull backpressure
	// Retries counts backpressure retries absorbed by the backoff helper
	// (0 unless LoadGenConfig.Retry is set).
	Retries int64
	Wall    time.Duration
	// Throughput is completed requests per second of wall time.
	Throughput float64
	// TotalInstrs sums the Counters.Instrs of completed requests.
	TotalInstrs int64
	// Errors holds the first few failure messages for diagnosis.
	Errors []string
}

// RunLoadGen drives cfg.Requests requests through run from
// cfg.Concurrency goroutines and reports aggregate throughput. It is the
// multi-core scaling demonstrator: with W workers serving, wall time
// approaches serial-time/W until the machine runs out of cores.
func RunLoadGen(ctx context.Context, cfg LoadGenConfig, run Runner) LoadGenResult {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 2 * cfg.Concurrency
	}
	workloads := cfg.Workloads
	if len(workloads) == 0 {
		workloads = defaultWorkloads()
	}

	var (
		completed, failed, rejected, instrs, retries atomic.Int64
		errMu                                        sync.Mutex
		errs                                         []string
	)
	idx := make(chan int, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		idx <- i
	}
	close(idx)

	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(cfg.Concurrency)
	for c := 0; c < cfg.Concurrency; c++ {
		go func(c int) {
			defer wg.Done()
			// Each client owns its rng, so the skewed draws need no
			// cross-goroutine synchronization and stay deterministic per
			// (Seed, client) pair.
			rng := rand.New(rand.NewSource(int64(seed) + int64(c)*0x9e3779b9))
			var zipf *rand.Zipf
			if cfg.Skew > 1 && len(workloads) > 1 {
				zipf = rand.NewZipf(rng, cfg.Skew, 1, uint64(len(workloads)-1))
			}
			for i := range idx {
				name := workloads[i%len(workloads)]
				if zipf != nil {
					name = workloads[zipf.Uint64()]
				}
				if cfg.HotRatio > 0 && rng.Float64() < cfg.HotRatio {
					name = workloads[0]
				}
				mode := cfg.Mode
				if cfg.WriteFrac > 0 && cfg.WriteFrac < 1 && rng.Float64() >= cfg.WriteFrac {
					mode = core.ModePlain
				}
				req := Request{
					Workload: name,
					Mode:     mode,
					MaxSteps: cfg.MaxSteps,
				}
				if cfg.Recorder != nil {
					rec := RecordFromRequest(req, "")
					rec.Seed = seed + uint64(c)
					_ = cfg.Recorder.Record(rec)
				}
				var resp *Response
				var err error
				if cfg.Retry != nil {
					b := *cfg.Retry
					b.Seed += uint64(i) // per-request jitter stream
					var r int
					resp, r, err = b.Retry(ctx, run, req)
					retries.Add(int64(r))
				} else {
					resp, err = run(ctx, req)
				}
				if err != nil {
					failed.Add(1)
					if errors.Is(err, ErrQueueFull) {
						rejected.Add(1)
					}
					errMu.Lock()
					if len(errs) < 8 {
						errs = append(errs, err.Error())
					}
					errMu.Unlock()
					continue
				}
				completed.Add(1)
				instrs.Add(resp.Counters.Instrs)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	res := LoadGenResult{
		Requests:    cfg.Requests,
		Completed:   completed.Load(),
		Failed:      failed.Load(),
		Rejected:    rejected.Load(),
		Retries:     retries.Load(),
		Wall:        wall,
		TotalInstrs: instrs.Load(),
		Errors:      errs,
	}
	if wall > 0 {
		res.Throughput = float64(res.Completed) / wall.Seconds()
	}
	return res
}
