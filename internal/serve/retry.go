package serve

import (
	"context"
	"errors"
	"time"
)

// Backoff retries a Runner on ErrQueueFull with exponentially growing,
// jittered delays. Backpressure rejection is the service telling the client
// "later", and the jitter keeps a fleet of rejected clients from
// re-converging on the same instant; every other error is returned as-is.
//
// Zero-valued fields take the documented defaults, so Backoff{} is usable.
// The jitter stream is deterministic in Seed, which keeps tests and load
// runs reproducible: same seed, same delays.
type Backoff struct {
	// Attempts is the total number of tries, including the first
	// (default 5).
	Attempts int
	// Base is the delay before the first retry (default 2ms).
	Base time.Duration
	// Max caps the grown delay (default 250ms).
	Max time.Duration
	// Factor multiplies the delay after each retry (default 2).
	Factor float64
	// Jitter is the fraction of each delay that is randomized: a delay d
	// becomes uniform in [d·(1−Jitter/2), d·(1+Jitter/2)] (default 0.5;
	// negative disables jitter).
	Jitter float64
	// Seed selects the deterministic jitter stream.
	Seed uint64
}

// norm returns a copy with defaults filled in.
func (b Backoff) norm() Backoff {
	if b.Attempts <= 0 {
		b.Attempts = 5
	}
	if b.Base <= 0 {
		b.Base = 2 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 250 * time.Millisecond
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter == 0 {
		b.Jitter = 0.5
	}
	return b
}

// splitmix64 is the SplitMix64 mixing function — a tiny, seedable,
// high-quality bit mixer, which is all the jitter needs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Delay returns the pause before the given retry (0-based: Delay(0)
// precedes the second attempt). It is a pure function of the Backoff
// value, so schedules can be inspected without sleeping.
func (b Backoff) Delay(retry int) time.Duration {
	n := b.norm()
	d := float64(n.Base)
	for i := 0; i < retry && d < float64(n.Max); i++ {
		d *= n.Factor
	}
	if d > float64(n.Max) {
		d = float64(n.Max)
	}
	if n.Jitter > 0 {
		u := float64(splitmix64(n.Seed+uint64(retry)+1)>>11) / (1 << 53)
		d *= 1 - n.Jitter/2 + n.Jitter*u
	}
	return time.Duration(d)
}

// Retry runs the request through run, sleeping and retrying while the
// service sheds load with ErrQueueFull. It returns the response, the number
// of retries performed, and the final error: nil on success, the last
// ErrQueueFull if every attempt was rejected, ctx.Err() if the context
// expired during a pause, or the first non-backpressure error immediately.
func (b Backoff) Retry(ctx context.Context, run Runner, req Request) (*Response, int, error) {
	n := b.norm()
	retries := 0
	for attempt := 0; ; attempt++ {
		resp, err := run(ctx, req)
		if err == nil {
			return resp, retries, nil
		}
		if !errors.Is(err, ErrQueueFull) || attempt+1 >= n.Attempts {
			return nil, retries, err
		}
		t := time.NewTimer(n.Delay(attempt))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, retries, ctx.Err()
		}
		retries++
	}
}
