package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/analysis/valueflow"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/faultinject/crash"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/snapshot"
)

// This file is the serving layer's side of multicore scale-out: per-worker
// BCG shards with epoch merge (Doppel-style phase reconciliation).
//
// Under the per-request model every profiled run built a fresh profiler and,
// with persistence on, exported the whole graph afterwards through a global
// store mutex — the scaling bottleneck the ROADMAP's open item 2 names.
// Here every worker owns a private core.Profiler per program (a shard):
// runs take exactly one uncontended lock, the dispatch hot path touches only
// worker-local arenas, and nothing is exported per run. At phase boundaries
// — every Config.EpochRuns profiled runs of a program, on a breaker trip,
// when the snapshot writer wants to commit, or at drain — the coordinator
// merges the shards' decayed counters into a fresh profiler, re-derives
// node states/signals/start-delays from the combined history (so the merged
// trace cache promotes only globally hot traces), and publishes the result:
// it seeds new shards, answers GET /v1/snapshot, and is what the snapshot
// writer serializes — never an individual shard.

// workerShard is one worker's private profiler for one program. The mutex is
// held for the duration of a run (workers never share a shard, so it is
// uncontended except against a concurrent epoch merge, which only reads).
type workerShard struct {
	mu   sync.Mutex
	prof *core.Profiler
	runs int64 // profiled runs through this shard
}

// shardSet is one program's sharding state: a fixed shard slot per worker
// plus the latest merged view.
type shardSet struct {
	key, name string
	params    profile.Params
	hints     *analysis.Hints
	prover    core.GuardProver // static guard oracle; stamps shard-built traces
	numBlocks int

	// Tier-2 compilation state. cfgp/facts feed each shard's compile
	// environment; compiled is the program-wide memo of lowered trace
	// programs, shared by every shard so a block sequence compiles at most
	// once and the compiled form is per-merged-view — a trace rebuilt from
	// the merged snapshot in any shard rebinds to the same immutable
	// Program. Nil when the trace-cache config leaves CompileTraces off.
	cfgp     *cfg.ProgramCFG
	facts    *valueflow.Facts
	compiled *core.CompiledStore

	shards []*workerShard

	mu             sync.Mutex
	merged         *snapshot.Snapshot // latest merged view; seeds fresh shards
	epoch          int64              // completed merges for this program
	runsSinceMerge int64
}

// epochCoordinator owns every program's shard set and performs the merges.
type epochCoordinator struct {
	workers   int
	epochRuns int64
	conf      core.Config // trace-cache budgets for shard and merged profilers
	ring      *obs.Ring
	snaps     *snapStore // may be nil; consulted for first-sight warm seeds

	mu   sync.Mutex
	sets map[string]*shardSet

	// Lifetime accounting, read by Stats.
	merges       atomic.Int64
	shardsMerged atomic.Int64
	liveShards   atomic.Int64
}

func newEpochCoordinator(workers int, epochRuns int64, conf core.Config, ring *obs.Ring, snaps *snapStore) *epochCoordinator {
	return &epochCoordinator{
		workers:   workers,
		epochRuns: epochRuns,
		conf:      conf,
		ring:      ring,
		snaps:     snaps,
		sets:      make(map[string]*shardSet),
	}
}

// acquire locks and returns workerID's shard for the program, creating the
// set on first sight. Returns nils when the request's profiler parameters
// differ from the ones the program's shards were built with — such requests
// fall back to the isolated per-request path rather than pollute shards
// learned under other parameters.
func (ec *epochCoordinator) acquire(comp *Compiled, params profile.Params, workerID int) (*workerShard, *shardSet) {
	ec.mu.Lock()
	set := ec.sets[comp.Key]
	if set == nil {
		set = &shardSet{
			key:    comp.Key,
			name:   comp.Name,
			params: params,
			hints:  comp.Hints,
			shards: make([]*workerShard, ec.workers),
		}
		if comp.Facts != nil && comp.CFG != nil {
			set.prover = valueflow.NewOracle(comp.Facts, comp.CFG)
		}
		if ec.conf.CompileTraces && comp.CFG != nil {
			set.cfgp = comp.CFG
			set.facts = comp.Facts
			set.compiled = core.NewCompiledStore()
		}
		for i := range set.shards {
			set.shards[i] = &workerShard{}
		}
		if comp.CFG != nil {
			set.numBlocks = comp.CFG.NumBlocks()
		}
		ec.sets[comp.Key] = set
	}
	ec.mu.Unlock()
	if set.params != params || workerID < 0 || workerID >= len(set.shards) {
		return nil, nil
	}
	sh := set.shards[workerID]
	sh.mu.Lock()
	return sh, set
}

// newShard builds (and installs) the profiler for a locked, empty shard.
func (ec *epochCoordinator) newShard(sh *workerShard, set *shardSet) (*core.Profiler, error) {
	prof, err := core.NewProfiler(set.params, ec.conf, set.hints, set.numBlocks)
	if err != nil {
		return nil, err
	}
	if set.prover != nil {
		prof.SetProver(set.prover)
	}
	if set.compiled != nil {
		prof.EnableCompile(set.cfgp, set.facts, set.compiled)
	}
	sh.prof = prof
	ec.liveShards.Add(1)
	return prof, nil
}

// warmSeed returns the snapshot a fresh shard should seed from: the latest
// merged view if one exists, else the persistence store's warm snapshot for
// the program (which probes disk on first sight). Nil means cold start. The
// caller re-checks params before applying, exactly like the legacy path.
func (ec *epochCoordinator) warmSeed(set *shardSet) *snapshot.Snapshot {
	set.mu.Lock()
	m := set.merged
	set.mu.Unlock()
	if m != nil {
		return m
	}
	if ec.snaps != nil {
		return ec.snaps.lookup(set.key, set.name)
	}
	return nil
}

// discard drops a locked shard's profiler (after a panicking run left it in
// an unknown state); the next run rebuilds from the merged view.
func (ec *epochCoordinator) discard(sh *workerShard) {
	if sh.prof != nil {
		sh.prof = nil
		ec.liveShards.Add(-1)
	}
}

// release unlocks a shard after a run and, when the program's epoch quota is
// reached, performs the merge. The merging request pays the (amortized 1 in
// EpochRuns) phase-boundary cost; the dispatch hot path never does. The
// quota check itself runs after every profiled request, so it must not
// allocate (the merge it occasionally triggers is the sanctioned cold path).
//
//tracevm:hotpath
func (ec *epochCoordinator) release(sh *workerShard, set *shardSet) {
	sh.runs++
	sh.mu.Unlock()
	set.mu.Lock()
	set.runsSinceMerge++
	due := set.runsSinceMerge >= ec.epochRuns
	set.mu.Unlock()
	if due {
		ec.merge(set, false)
	}
}

// merge absorbs every shard's current history into a fresh profiler,
// re-derives states (signalling the merged cache, which promotes globally
// hot traces), and publishes the export as the program's merged view. With
// wait false, shards locked by an in-flight run are skipped — their learning
// lands next epoch — so a merge never stalls behind a long run; drain-time
// merges pass wait true, when every worker has already exited. Returns nil
// when nothing was absorbed.
func (ec *epochCoordinator) merge(set *shardSet, wait bool) *snapshot.Snapshot {
	merged, err := core.NewProfiler(set.params, ec.conf, set.hints, set.numBlocks)
	if err != nil {
		return nil
	}
	if set.prover != nil {
		// Traces the merged cache promotes carry guard proofs too — they
		// seed fresh shards and the snapshot writer serializes them.
		merged.SetProver(set.prover)
	}
	absorbed := 0
	for _, sh := range set.shards {
		if wait {
			sh.mu.Lock()
		} else if !sh.mu.TryLock() {
			continue
		}
		if sh.prof != nil && sh.prof.Seeded() {
			if _, err := merged.Absorb(sh.prof); err == nil {
				absorbed++
			}
		}
		sh.mu.Unlock()
	}
	if absorbed == 0 {
		return nil
	}
	// Crash point: shard history absorbed but the merged view not yet
	// published — recovery must tolerate dying mid-merge with the previous
	// epoch's state still current.
	crash.Here(crash.PointEpochMerge)
	merged.DeriveStates()
	snap := merged.ExportSnapshot(set.key, set.name)
	set.mu.Lock()
	set.merged = snap
	set.epoch++
	set.runsSinceMerge = 0
	set.mu.Unlock()
	ec.merges.Add(1)
	ec.shardsMerged.Add(int64(absorbed))
	ec.ring.Emit(obs.Event{
		Type: obs.EvEpochMerge,
		X:    obs.NoID, Y: obs.NoID, TraceID: obs.NoID,
		Val: int64(merged.Graph.NumNodes()), Program: set.name,
	})
	return snap
}

// mergeProgram forces an epoch boundary for one program — the breaker-trip
// hook: when churn trips the breaker mid-epoch the program demotes to plain
// dispatch, so without this merge the shards' tracing-phase learning would
// sit stranded (unmerged, uncommittable) for as long as the breaker stays
// open.
func (ec *epochCoordinator) mergeProgram(key string) {
	ec.mu.Lock()
	set := ec.sets[key]
	ec.mu.Unlock()
	if set != nil {
		ec.merge(set, false)
	}
}

// exportForCommit gives the snapshot writer the freshest merged view of a
// program at commit time — the writer's commit is itself a phase boundary.
// Returns nil for programs with no shard set (legacy-path entries, bare
// installs) or nothing absorbed; the writer then falls back to whatever
// warm snapshot it already holds. wait semantics as in merge: the final
// drain commit waits for (quiescent) shards, periodic commits skip busy
// ones.
func (ec *epochCoordinator) exportForCommit(key string, wait bool) *snapshot.Snapshot {
	ec.mu.Lock()
	set := ec.sets[key]
	ec.mu.Unlock()
	if set == nil {
		return nil
	}
	if snap := ec.merge(set, wait); snap != nil {
		return snap
	}
	set.mu.Lock()
	defer set.mu.Unlock()
	return set.merged
}

// gauges reports (programs with a shard set, live shards) for Stats.
func (ec *epochCoordinator) gauges() (programs, shards int) {
	ec.mu.Lock()
	programs = len(ec.sets)
	ec.mu.Unlock()
	return programs, int(ec.liveShards.Load())
}
