package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
)

const tinySource = `class Main { static void main() { Sys.printlnInt(7); } }`

// spinSource loops forever; only an interrupt or step budget stops it.
const spinSource = `class Main { static void main() { int i = 0; while (0 < 1) { i = i + 1; } Sys.printlnInt(i); } }`

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func TestDoSource(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	resp, err := s.Do(context.Background(), Request{Source: tinySource, Mode: core.ModeTrace})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Output != "7\n" {
		t.Errorf("output = %q, want %q", resp.Output, "7\n")
	}
	if resp.Counters.Instrs == 0 {
		t.Error("no instructions counted")
	}
	if !strings.HasPrefix(resp.Program, "minijava:") {
		t.Errorf("program label = %q", resp.Program)
	}
	snap := s.Stats()
	if snap.Accepted != 1 || snap.Completed != 1 {
		t.Errorf("accounting: accepted=%d completed=%d", snap.Accepted, snap.Completed)
	}
	if snap.Global.Instrs != resp.Counters.Instrs {
		t.Errorf("global instrs %d != response instrs %d", snap.Global.Instrs, resp.Counters.Instrs)
	}
}

func TestRegistryCompilesOnce(t *testing.T) {
	s := newTestService(t, Config{Workers: 4})
	const n = 16
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			if _, err := s.Do(context.Background(), Request{Workload: "soot", Mode: core.ModePlain}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	snap := s.Stats()
	if snap.Programs != 1 {
		t.Errorf("registry holds %d programs, want 1", snap.Programs)
	}
	if snap.RegistryMisses != 1 || snap.RegistryHits != n-1 {
		t.Errorf("hits=%d misses=%d, want %d/1", snap.RegistryHits, snap.RegistryMisses, n-1)
	}
	if ps := snap.PerProgram["soot"]; ps.Runs != n {
		t.Errorf("soot runs = %d, want %d", ps.Runs, n)
	}
}

func TestCompileErrorNotEnqueued(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	_, err := s.Do(context.Background(), Request{Source: "class {"})
	if err == nil {
		t.Fatal("bad program accepted")
	}
	// The error is cached: same source, same error, still no run.
	_, err2 := s.Do(context.Background(), Request{Source: "class {"})
	if err2 == nil || err2.Error() != err.Error() {
		t.Errorf("cached compile error mismatch: %v vs %v", err, err2)
	}
	snap := s.Stats()
	if snap.CompileErrors != 2 || snap.Accepted != 0 {
		t.Errorf("compileErrors=%d accepted=%d", snap.CompileErrors, snap.Accepted)
	}
}

func TestRequestValidation(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	if _, err := s.Do(context.Background(), Request{}); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := s.Do(context.Background(), Request{Workload: "compress", Source: tinySource}); err == nil {
		t.Error("ambiguous request accepted")
	}
	if _, err := s.Do(context.Background(), Request{Workload: "nope"}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestBackpressure(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 16)
	s := newTestService(t, Config{Workers: 1, QueueDepth: 1, Injector: InjectorFuncs{
		Exec: func(Request) {
			started <- struct{}{}
			<-block
		},
	}})

	// First request occupies the worker, second fills the queue.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := s.Do(context.Background(), Request{Source: tinySource})
			results <- err
		}()
	}
	<-started // the worker is now blocked inside request 1

	// Wait for the second request to occupy the single queue slot.
	deadline := time.After(5 * time.Second)
	for len(s.jobs) == 0 {
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		case <-time.After(time.Millisecond):
		}
	}

	// The third must be rejected immediately.
	if _, err := s.Do(context.Background(), Request{Source: tinySource}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("overload error = %v, want ErrQueueFull", err)
	}
	close(block)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("queued request failed: %v", err)
		}
	}
	snap := s.Stats()
	if snap.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", snap.Rejected)
	}
}

func TestTimeoutInterruptsRunningSession(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	start := time.Now()
	_, err := s.Do(context.Background(), Request{Source: spinSource, Timeout: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("runaway program returned without error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; interrupt did not reach the session", elapsed)
	}
	// The worker must be free again: a normal request still runs.
	if _, err := s.Do(context.Background(), Request{Source: tinySource}); err != nil {
		t.Errorf("service wedged after timeout: %v", err)
	}
	snap := s.Stats()
	if snap.TimedOut != 1 {
		t.Errorf("timedOut = %d, want 1", snap.TimedOut)
	}
}

func TestTimeoutWhileQueued(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	hooked := false
	var mu sync.Mutex
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4, Injector: InjectorFuncs{
		Exec: func(Request) {
			mu.Lock()
			first := !hooked
			hooked = true
			mu.Unlock()
			if first {
				started <- struct{}{}
				<-block
			}
		},
	}})
	go s.Do(context.Background(), Request{Source: tinySource}) //nolint:errcheck
	<-started

	// This one sits in the queue until its context expires.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := s.Do(ctx, Request{Source: tinySource})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("queued timeout error = %v", err)
	}
	close(block)
}

func TestPanicRecovery(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, Injector: InjectorFuncs{
		Exec: func(req Request) {
			if req.Workload == "compress" {
				panic("injected fault")
			}
		},
	}})
	_, err := s.Do(context.Background(), Request{Workload: "compress"})
	if err == nil || !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("panic not surfaced as error: %v", err)
	}
	// The pool survives: other requests keep working on every worker.
	for i := 0; i < 4; i++ {
		if _, err := s.Do(context.Background(), Request{Source: tinySource}); err != nil {
			t.Fatalf("service dead after panic: %v", err)
		}
	}
	snap := s.Stats()
	if snap.Panics != 1 || snap.Failed != 1 {
		t.Errorf("panics=%d failed=%d, want 1/1", snap.Panics, snap.Failed)
	}
}

func TestQuarantine(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QuarantineAfter: 2, Injector: InjectorFuncs{
		Exec: func(req Request) {
			if req.Workload == "compress" {
				panic("chaos")
			}
		},
	}})
	for i := 0; i < 2; i++ {
		_, err := s.Do(context.Background(), Request{Workload: "compress"})
		if err == nil || errors.Is(err, ErrQuarantined) {
			t.Fatalf("run %d: err = %v, want a panic error before the threshold", i, err)
		}
	}
	// Third submission: the panic count has hit the threshold, so the
	// request is rejected before it can take down another worker.
	_, err := s.Do(context.Background(), Request{Workload: "compress"})
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("past threshold: err = %v, want ErrQuarantined", err)
	}
	// Other programs are unaffected.
	if _, err := s.Do(context.Background(), Request{Source: tinySource}); err != nil {
		t.Fatalf("healthy program rejected: %v", err)
	}
	snap := s.Stats()
	if snap.Quarantined != 1 || snap.QuarantinedPrograms != 1 || snap.Panics != 2 {
		t.Errorf("quarantined=%d programs=%d panics=%d, want 1/1/2",
			snap.Quarantined, snap.QuarantinedPrograms, snap.Panics)
	}
}

func TestQuarantineDisabled(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QuarantineAfter: -1, Injector: InjectorFuncs{
		Exec: func(Request) { panic("chaos") },
	}})
	for i := 0; i < 5; i++ {
		if _, err := s.Do(context.Background(), Request{Source: tinySource}); errors.Is(err, ErrQuarantined) {
			t.Fatal("quarantine engaged while disabled")
		}
	}
	if snap := s.Stats(); snap.QuarantinedPrograms != 0 {
		t.Errorf("quarantinedPrograms = %d, want 0", snap.QuarantinedPrograms)
	}
}

func TestLoadGenRetriesBackpressure(t *testing.T) {
	// A runner that rejects the first few calls forces the backoff path;
	// with retries enabled none of the requests may fail.
	var calls atomic.Int64
	s := newTestService(t, Config{Workers: 2})
	run := Runner(func(ctx context.Context, req Request) (*Response, error) {
		if calls.Add(1) <= 3 {
			return nil, ErrQueueFull
		}
		return s.Do(ctx, req)
	})
	res := RunLoadGen(context.Background(), LoadGenConfig{
		Concurrency: 2,
		Requests:    6,
		Workloads:   []string{"soot"},
		Retry:       &Backoff{Base: time.Microsecond, Max: 10 * time.Microsecond, Seed: 1},
	}, run)
	if res.Failed != 0 {
		t.Fatalf("failures despite retry: %+v", res)
	}
	if res.Retries == 0 {
		t.Error("no retries recorded")
	}
}

func TestRunErrorCounted(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	_, err := s.Do(context.Background(), Request{Source: spinSource, MaxSteps: 1000})
	if err == nil {
		t.Fatal("step-limited run succeeded")
	}
	if snap := s.Stats(); snap.Failed != 1 {
		t.Errorf("failed = %d, want 1", snap.Failed)
	}
}

func TestServiceMaxStepsClamp(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, MaxSteps: 1000})
	// Unbounded request: clamped to the service cap, so the spin must trap.
	if _, err := s.Do(context.Background(), Request{Source: spinSource}); err == nil {
		t.Error("service step cap not applied to unbounded request")
	}
	// Oversized request budget: also clamped.
	if _, err := s.Do(context.Background(), Request{Source: spinSource, MaxSteps: 1 << 40}); err == nil {
		t.Error("service step cap not applied to oversized request")
	}
}

func TestCloseDrains(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	wg.Add(6)
	for i := 0; i < 6; i++ {
		go func() {
			defer wg.Done()
			_, err := s.Do(context.Background(), Request{Source: tinySource, Mode: core.ModeTrace})
			errs <- err
		}()
	}
	wg.Wait() // all six finished before Close: simplest drain case
	s.Close()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("pre-close request failed: %v", err)
		}
	}
	if _, err := s.Do(context.Background(), Request{Source: tinySource}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close error = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestLatencyHistogram(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	for i := 0; i < 3; i++ {
		if _, err := s.Do(context.Background(), Request{Source: tinySource}); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Stats()
	var total int64
	for _, b := range snap.Latency {
		total += b.Count
	}
	if total != 3 {
		t.Errorf("histogram holds %d observations, want 3", total)
	}
	if snap.Latency[len(snap.Latency)-1].UpperMs != 0 {
		t.Error("last bucket should be unbounded (UpperMs 0)")
	}
}

func TestSourceKindJasm(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	const jasmSrc = `
.class Main
.method static main ( ) void
    return
.end
.end
.entry Main main
`
	resp, err := s.Do(context.Background(), Request{Source: jasmSrc, Kind: KindJasm})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.Program, "jasm:") {
		t.Errorf("program label = %q", resp.Program)
	}
}

func TestLoadGen(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueDepth: 32})
	res := RunLoadGen(context.Background(), LoadGenConfig{
		Concurrency: 4,
		Requests:    8,
		Workloads:   []string{"soot", "raytrace"},
		Mode:        core.ModePlain,
	}, s.Do)
	if res.Completed != 8 || res.Failed != 0 {
		t.Fatalf("loadgen: completed=%d failed=%d errs=%v", res.Completed, res.Failed, res.Errors)
	}
	if res.Throughput <= 0 || res.TotalInstrs == 0 {
		t.Errorf("degenerate result: %+v", res)
	}
}

func TestModeStringsRoundTrip(t *testing.T) {
	// The HTTP layer depends on Mode.String values; pin them.
	want := map[core.Mode]string{
		core.ModePlain: "plain", core.ModeInstr: "instr", core.ModeProfile: "profile",
		core.ModeTrace: "trace", core.ModeTraceDeploy: "trace-deploy",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
	if fmt.Sprint(KindMiniJava, KindJasm) != "minijava jasm" {
		t.Errorf("SourceKind strings changed: %v %v", KindMiniJava, KindJasm)
	}
}

// uninitSource reads a local no path ever wrote: the VM's zero-initialized
// frames run it happily, but the verifier must refuse it — the pair proves
// the gate is the verifier, not the interpreter.
const uninitSource = `
.class Main
.method static main ( ) void
    .locals 1
    iload 0
    invokestatic Main.print
    return
.end
.native static print ( int ) void println_int
.end
.entry Main main
`

func TestDoRejectsUnverifiableSource(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	_, err := s.Do(context.Background(), Request{Source: uninitSource, Kind: KindJasm})
	if err == nil {
		t.Fatal("unverifiable program accepted")
	}
	var verr *analysis.VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("error is not a *analysis.VerifyError: %v", err)
	}
	if got := verr.Report.Errors()[0].Rule; got != analysis.RuleUninitLocal {
		t.Fatalf("rule = %s, want %s", got, analysis.RuleUninitLocal)
	}

	// The rejection is cached like a compile error: resubmitting hits the
	// registry and is refused again without recompiling.
	if _, err2 := s.Do(context.Background(), Request{Source: uninitSource, Kind: KindJasm}); err2 == nil {
		t.Fatal("resubmitted unverifiable program accepted")
	}
	snap := s.Stats()
	if snap.ProgramsRejected != 2 {
		t.Errorf("ProgramsRejected = %d, want 2", snap.ProgramsRejected)
	}
	if snap.CompileErrors != 0 {
		t.Errorf("CompileErrors = %d, want 0 (verification rejections are counted separately)", snap.CompileErrors)
	}
	if snap.Programs != 1 {
		t.Errorf("registry holds %d entries, want 1 (cached rejection)", snap.Programs)
	}
}

func TestNoVerifySkipsTheGate(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, NoVerify: true})
	resp, err := s.Do(context.Background(), Request{Source: uninitSource, Kind: KindJasm})
	if err != nil {
		t.Fatalf("NoVerify service refused the program: %v", err)
	}
	if resp.Output != "0\n" {
		t.Errorf("output = %q, want %q (zero-initialized local)", resp.Output, "0\n")
	}
	if snap := s.Stats(); snap.ProgramsRejected != 0 {
		t.Errorf("ProgramsRejected = %d, want 0", snap.ProgramsRejected)
	}
}

func TestCompileErrorNotCountedAsRejected(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	if _, err := s.Do(context.Background(), Request{Source: "class {", Kind: KindMiniJava}); err == nil {
		t.Fatal("syntactically invalid program accepted")
	}
	snap := s.Stats()
	if snap.CompileErrors != 1 || snap.ProgramsRejected != 0 {
		t.Errorf("CompileErrors=%d ProgramsRejected=%d, want 1/0", snap.CompileErrors, snap.ProgramsRejected)
	}
}
