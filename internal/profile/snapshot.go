package profile

import "repro/internal/cfg"

// This file is the profiler's side of profile persistence (ROADMAP item:
// warm start): a structural export of the branch correlation graph and the
// inverse seeding operation. The snapshot codec itself lives in
// internal/snapshot; these types deliberately carry no pointers so the graph
// can be rebuilt in any order against fresh arenas.

// EdgeSnapshot is one serialized branch correlation E_XYZ: successor Z with
// its decayed 16-bit counter.
type EdgeSnapshot struct {
	Z     cfg.BlockID
	Count uint16
}

// NodeSnapshot is one serialized branch context N_XY. Edges are sorted by Z
// (the in-memory invariant); Best is the cached most likely successor's Z,
// or cfg.NoBlock when the node has no prediction. Total is not stored: it is
// re-derived from the invariant Total == Σ edge.Count at seed time, so a
// corrupted snapshot cannot smuggle in an inconsistent ratio denominator.
type NodeSnapshot struct {
	X, Y       cfg.BlockID
	State      State
	StartDelay int32
	Best       cfg.BlockID
	Edges      []EdgeSnapshot
}

// Export returns a structural copy of every node, in creation order. The
// result aliases nothing in the graph and stays valid after the session
// ends; it is what the snapshot codec serializes.
func (g *Graph) Export() []NodeSnapshot {
	out := make([]NodeSnapshot, 0, len(g.all))
	for _, n := range g.all {
		ns := NodeSnapshot{
			X:          n.X,
			Y:          n.Y,
			State:      n.State,
			StartDelay: n.startDelay,
			Best:       cfg.NoBlock,
		}
		if n.Best != nil {
			ns.Best = n.Best.Z
		}
		if len(n.Edges) > 0 {
			ns.Edges = make([]EdgeSnapshot, 0, len(n.Edges))
			for _, e := range n.Edges {
				ns.Edges = append(ns.Edges, EdgeSnapshot{Z: e.Z, Count: e.Count})
			}
		}
		out = append(out, ns)
	}
	return out
}

// SeedNodes rebuilds branch contexts from a snapshot, the warm-start
// analogue of SetStaticHints: nodes come back pre-classified with their
// saved states, counters and residual start delays instead of relearning
// from zero. Seeding leaves every node unacknowledged (ackState StateNew),
// exactly like Unacknowledge after an eviction: a seeded region that is hot
// again signals at its first evaluation, so the trace cache can rebuild any
// trace the snapshot did not carry, while a region that stays cold never
// signals at all.
//
// Call before the profiled run. Nodes that already exist are left untouched;
// malformed entries (out-of-range states, unknown Best successors) are
// repaired conservatively rather than trusted. Returns the number of nodes
// created.
func (g *Graph) SeedNodes(nodes []NodeSnapshot) int {
	seeded := 0
	// Pass 1: materialize every node with its saved classification, so that
	// pass 2's edge targets resolve to seeded nodes rather than fresh ones.
	for i := range nodes {
		ns := &nodes[i]
		if ns.X == cfg.NoBlock || ns.Y == cfg.NoBlock || ns.State > StateUnique {
			continue
		}
		if g.Node(ns.X, ns.Y) != nil {
			continue
		}
		n := g.getNode(ns.X, ns.Y)
		n.State = ns.State
		n.startDelay = ns.StartDelay
		if n.State == StateNew && n.startDelay < 0 {
			n.startDelay = 0
		}
		// Unacknowledged: the first evaluation after warm-up re-signals.
		n.ackState = StateNew
		n.ackBest = cfg.NoBlock
		g.ctr.NodesSeededFromSnapshot++
		seeded++
	}

	// Pass 2: wire the correlations. Insertion mirrors OnDispatch's slow
	// path (sorted by Z, In lists maintained) so a seeded graph is
	// indistinguishable from an organically grown one.
	for i := range nodes {
		ns := &nodes[i]
		if ns.X == cfg.NoBlock || ns.Y == cfg.NoBlock || ns.State > StateUnique {
			continue
		}
		n := g.Node(ns.X, ns.Y)
		if n == nil {
			continue
		}
		for _, es := range ns.Edges {
			if es.Z == cfg.NoBlock || es.Count == 0 || n.EdgeTo(es.Z) != nil {
				continue
			}
			g.seedEdge(n, es.Z, es.Count)
		}
		var total uint32
		for _, e := range n.Edges {
			total += uint32(e.Count)
		}
		if total > uint32(^uint16(0)) {
			total = uint32(^uint16(0))
		}
		n.Total = uint16(total)
		n.Best = nil
		if ns.Best != cfg.NoBlock {
			n.Best = n.EdgeTo(ns.Best)
		}
		if n.Best == nil {
			for _, e := range n.Edges {
				if n.Best == nil || e.Count > n.Best.Count {
					n.Best = e
				}
			}
		}
		if n.Best == nil && n.State.Correlated() {
			// Correlated with no surviving successor is unrepresentable in a
			// live graph; demote rather than let trace construction follow a
			// nil prediction.
			n.State = StateWeak
		}
	}
	return seeded
}

// seedEdge inserts a correlation toward z at its sorted position, keeping
// the Edges/In invariants OnDispatch maintains.
func (g *Graph) seedEdge(n *Node, z cfg.BlockID, count uint16) {
	i := 0
	for ; i < len(n.Edges); i++ {
		if n.Edges[i].Z >= z {
			break
		}
	}
	e := g.allocEdge()
	*e = Edge{Owner: n, To: g.getNode(n.Y, z), Z: z, Count: count}
	if len(n.Edges) == cap(n.Edges) {
		g.ctr.EdgeSpills++
	}
	n.Edges = append(n.Edges, nil)
	copy(n.Edges[i+1:], n.Edges[i:])
	n.Edges[i] = e
	e.To.In = append(e.To.In, e)
	g.ctr.EdgesCreated++
}
