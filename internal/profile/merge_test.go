package profile

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/stats"
)

// TestAbsorbSumsEdgeCounters: two shards that each saw the same branch N
// times merge into a node that saw it 2N times, with Total matching the
// edge-sum invariant.
func TestAbsorbSumsEdgeCounters(t *testing.T) {
	p := Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 1 << 30}
	a, _, _ := newGraph(t, p)
	b, _, _ := newGraph(t, p)
	for i := 0; i < 40; i++ {
		feed(a, 1, 2, 3)
		a.ResetContext()
	}
	for i := 0; i < 25; i++ {
		feed(b, 1, 2, 3)
		b.ResetContext()
	}

	merged, _, _ := newGraph(t, p)
	for _, src := range []*Graph{a, b} {
		if n, err := merged.Absorb(src); err != nil || n == 0 {
			t.Fatalf("Absorb: visited %d, err %v", n, err)
		}
	}
	n := merged.Node(1, 2)
	if n == nil {
		t.Fatal("merged node missing")
	}
	e := n.EdgeTo(3)
	if e == nil || e.Count != 65 {
		t.Fatalf("merged edge count = %+v, want 65", e)
	}
	if n.Total != 65 {
		t.Errorf("merged total = %d, want 65", n.Total)
	}
	// Non-destructive: the shards keep their own counts.
	if a.Node(1, 2).Total != 40 || b.Node(1, 2).Total != 25 {
		t.Error("Absorb modified a source shard")
	}
}

// TestAbsorbSaturatesAt16Bits: edge counters saturate instead of wrapping,
// so a merge across many shards cannot invert a correlation ratio.
func TestAbsorbSaturatesAt16Bits(t *testing.T) {
	p := Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 1 << 30}
	src, _, _ := newGraph(t, p)
	for i := 0; i < 3000; i++ {
		feed(src, 1, 2, 3)
		src.ResetContext()
	}
	merged, _, _ := newGraph(t, p)
	for i := 0; i < 25; i++ { // 25 × 3000 = 75000 > 65535
		if _, err := merged.Absorb(src); err != nil {
			t.Fatal(err)
		}
	}
	n := merged.Node(1, 2)
	if n.EdgeTo(3).Count != ^uint16(0) {
		t.Errorf("saturated count = %d, want %d", n.EdgeTo(3).Count, ^uint16(0))
	}
	if n.Total != ^uint16(0) {
		t.Errorf("saturated total = %d, want %d", n.Total, ^uint16(0))
	}
}

// TestAbsorbRejectsParamsMismatch: counters and delays are only meaningful
// relative to their parameters, so cross-parameter merges must refuse.
func TestAbsorbRejectsParamsMismatch(t *testing.T) {
	a, _, _ := newGraph(t, Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 256})
	b, _, _ := newGraph(t, Params{StartDelay: 2, Threshold: 0.9, DecayInterval: 256})
	if _, err := a.Absorb(b); err == nil {
		t.Fatal("params mismatch accepted")
	}
}

// TestMergeAccumulatesStartDelay: observations toward a node's start-delay
// quota add across shards. Two shards that each observed a branch 4 times
// out of a 10-execution quota leave the merged node rare (2 remaining);
// a third shard's observations push it over and DeriveStates promotes it.
func TestMergeAccumulatesStartDelay(t *testing.T) {
	p := Params{StartDelay: 10, Threshold: 0.9, DecayInterval: 1 << 30}
	shard := func(execs int) *Graph {
		g, _, _ := newGraph(t, p)
		for i := 0; i < execs; i++ {
			feed(g, 1, 2, 3)
			g.ResetContext()
		}
		return g
	}

	rec := &recorder{}
	merged, err := New(p, &stats.Counters{}, rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []*Graph{shard(4), shard(4)} {
		if _, err := merged.Absorb(src); err != nil {
			t.Fatal(err)
		}
	}
	merged.DeriveStates()
	n := merged.Node(1, 2)
	if n.State != StateNew {
		t.Fatalf("state after 8/10 merged observations = %v, want new", n.State)
	}
	if len(rec.signals) != 0 {
		t.Fatalf("rare node signalled: %v", rec.signals)
	}

	if _, err := merged.Absorb(shard(3)); err != nil {
		t.Fatal(err)
	}
	merged.DeriveStates()
	if n.State != StateUnique {
		t.Fatalf("state after 11/10 merged observations = %v, want unique", n.State)
	}
	if len(rec.signals) != 1 || rec.signals[0].Node != n || rec.signals[0].NewBest != 3 {
		t.Fatalf("signals = %+v, want one new->unique for (1,2)", rec.signals)
	}
}

// TestMergePreservesHintBornNodes: a hint-seeded shard node (negative
// start-delay sentinel) satisfies the merged quota outright, and a
// hint-seeded merged node keeps its sentinel through Absorb.
func TestMergePreservesHintBornNodes(t *testing.T) {
	p := Params{StartDelay: 64, Threshold: 0.9, DecayInterval: 1 << 30}

	src, _, _ := newGraph(t, p)
	src.SetStaticHints([]cfg.BlockID{2})
	feed(src, 1, 2, 3) // one execution, hint-born unique

	merged, _, _ := newGraph(t, p) // no hints on the merged side
	if _, err := merged.Absorb(src); err != nil {
		t.Fatal(err)
	}
	merged.DeriveStates()
	n := merged.Node(1, 2)
	if n.startDelay != 0 {
		t.Errorf("hint-born source should satisfy the quota: startDelay = %d", n.startDelay)
	}
	if n.State != StateUnique {
		t.Errorf("state = %v, want unique", n.State)
	}

	// Merged graph itself hinted: the sentinel survives absorption.
	hinted, _, _ := newGraph(t, p)
	hinted.SetStaticHints([]cfg.BlockID{2})
	plain, _, _ := newGraph(t, p)
	feed(plain, 1, 2, 3)
	if _, err := hinted.Absorb(plain); err != nil {
		t.Fatal(err)
	}
	if hinted.Node(1, 2).startDelay >= 0 {
		t.Errorf("hint-born merged node lost its sentinel: startDelay = %d",
			hinted.Node(1, 2).startDelay)
	}
}

// TestDeriveStatesDilutesConflictingShards: the "globally hot" filter. A
// branch that is unique on each shard but with contradictory successors
// merges to weak — the trace cache never sees a correlated signal for it —
// while a branch the shards agree on promotes normally.
func TestDeriveStatesDilutesConflictingShards(t *testing.T) {
	p := Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 1 << 30}
	a, _, _ := newGraph(t, p)
	b, _, _ := newGraph(t, p)
	for i := 0; i < 100; i++ {
		feed(a, 1, 2, 3) // shard A: (1,2) always goes to 3
		a.ResetContext()
		feed(a, 5, 6, 7) // both shards agree on (5,6) -> 7
		a.ResetContext()
		feed(b, 1, 2, 4) // shard B: (1,2) always goes to 4
		b.ResetContext()
		feed(b, 5, 6, 7)
		b.ResetContext()
	}

	rec := &recorder{}
	merged, err := New(p, &stats.Counters{}, rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []*Graph{a, b} {
		if _, err := merged.Absorb(src); err != nil {
			t.Fatal(err)
		}
	}
	merged.DeriveStates()

	if st := merged.Node(1, 2).State; st != StateWeak {
		t.Errorf("conflicting branch state = %v, want weak (diluted below threshold)", st)
	}
	if st := merged.Node(5, 6).State; st != StateUnique {
		t.Errorf("agreeing branch state = %v, want unique", st)
	}
	for _, sig := range rec.signals {
		if sig.Node == merged.Node(1, 2) && sig.NewState.Correlated() {
			t.Errorf("diluted branch raised a correlated signal: %+v", sig)
		}
	}
	promoted := false
	for _, sig := range rec.signals {
		if sig.Node == merged.Node(5, 6) && sig.NewState == StateUnique && sig.NewBest == 7 {
			promoted = true
		}
	}
	if !promoted {
		t.Error("agreeing branch never signalled the merged trace cache")
	}
}

// TestSetCountersRebinds: a shard that outlives its session keeps learning
// into whichever counter record the next run binds.
func TestSetCountersRebinds(t *testing.T) {
	g, _, ctr1 := newGraph(t, Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 1 << 30})
	feed(g, 1, 2, 3)
	ctr2 := &stats.Counters{}
	g.SetCounters(ctr2)
	feed(g, 7, 8, 9)
	if ctr1.NodesCreated != 2 || ctr2.NodesCreated != 2 {
		t.Errorf("counters after rebind: first %d, second %d, want 2 and 2",
			ctr1.NodesCreated, ctr2.NodesCreated)
	}
	g.SetCounters(nil) // must not panic; discards subsequent accounting
	feed(g, 11, 12, 13)
}
