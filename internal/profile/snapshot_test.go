package profile

import (
	"reflect"
	"testing"

	"repro/internal/cfg"
)

// grow drives an organic working set: an inner hot cycle with an alternating
// cold exit, enough rounds to classify the hot nodes past the start delay.
func grow(g *Graph, rounds int) {
	for r := 0; r < rounds; r++ {
		feed(g, 1, 2, 3, 4, 1, 2, 3, 5, 1)
	}
}

// TestExportSeedRoundTrip pins the central warm-start property: exporting an
// organically grown graph and seeding a fresh one yields a structurally
// identical graph — same nodes in the same order, same states, counters,
// start delays, edges, and predictions.
func TestExportSeedRoundTrip(t *testing.T) {
	p := Params{StartDelay: 8, Threshold: 0.97, DecayInterval: 64}
	g, _, _ := newGraph(t, p)
	grow(g, 256)
	snap := g.Export()
	if len(snap) == 0 {
		t.Fatal("organic graph exported no nodes")
	}

	g2, _, ctr2 := newGraph(t, p)
	seeded := g2.SeedNodes(snap)
	if seeded != len(snap) {
		t.Fatalf("seeded %d of %d nodes", seeded, len(snap))
	}
	if ctr2.NodesSeededFromSnapshot != int64(len(snap)) {
		t.Errorf("NodesSeededFromSnapshot = %d, want %d", ctr2.NodesSeededFromSnapshot, len(snap))
	}
	if got := g2.Export(); !reflect.DeepEqual(got, snap) {
		t.Errorf("re-export differs from source export:\n got %+v\nwant %+v", got, snap)
	}
}

// TestSeedIsIdempotent: seeding the same snapshot twice changes nothing —
// existing nodes are left untouched.
func TestSeedIsIdempotent(t *testing.T) {
	p := Params{StartDelay: 8, Threshold: 0.97, DecayInterval: 64}
	g, _, _ := newGraph(t, p)
	grow(g, 256)
	snap := g.Export()

	g2, _, _ := newGraph(t, p)
	g2.SeedNodes(snap)
	once := g2.Export()
	if n := g2.SeedNodes(snap); n != 0 {
		t.Errorf("second seed created %d nodes, want 0", n)
	}
	if got := g2.Export(); !reflect.DeepEqual(got, once) {
		t.Error("second seed mutated the graph")
	}
}

// TestSeededGraphResignals: a seeded node is unacknowledged, so a hot region
// that stays hot re-signals its classification at the first evaluation —
// that is what lets the trace cache rebuild traces the snapshot did not
// carry.
func TestSeededGraphResignals(t *testing.T) {
	p := Params{StartDelay: 1, Threshold: 0.97, DecayInterval: 64}
	g, rec, _ := newGraph(t, p)
	grow(g, 512)
	if len(rec.signals) == 0 {
		t.Fatal("organic run produced no signals; test harness is wrong")
	}

	g2, rec2, _ := newGraph(t, p)
	g2.SeedNodes(g.Export())
	if len(rec2.signals) != 0 {
		t.Fatalf("seeding itself signaled %d times; seeding must be silent", len(rec2.signals))
	}
	grow(g2, 64)
	if len(rec2.signals) == 0 {
		t.Error("seeded hot region never re-signaled")
	}
}

// TestSeedNodesRepairsMalformed: snapshot entries with out-of-range states,
// unknown Best successors, or correlated states without edges are repaired
// or skipped, never trusted.
func TestSeedNodesRepairsMalformed(t *testing.T) {
	p := Params{StartDelay: 8, Threshold: 0.97, DecayInterval: 64}
	g, _, _ := newGraph(t, p)
	n := g.SeedNodes([]NodeSnapshot{
		{X: 1, Y: 2, State: State(200)},               // out-of-range state: skipped
		{X: cfg.NoBlock, Y: 2, State: StateStrong},    // no-block context: skipped
		{X: 2, Y: 3, State: StateStrong, Best: 99},    // Best not among edges
		{X: 3, Y: 4, State: StateUnique},              // correlated, no edges at all
		{X: 4, Y: 5, State: StateNew, StartDelay: -7}, // negative residual delay on a new node
	})
	if n != 3 {
		t.Fatalf("seeded %d nodes, want 3", n)
	}
	if g.Node(1, 2) != nil {
		t.Error("out-of-range state was materialized")
	}
	if node := g.Node(2, 3); node == nil || node.Best != nil {
		t.Errorf("unknown Best not repaired: %+v", node)
	}
	if node := g.Node(3, 4); node == nil || node.State != StateWeak {
		t.Errorf("correlated node without edges not demoted to weak: %+v", node)
	}
	if node := g.Node(4, 5); node == nil || node.startDelay != 0 {
		t.Errorf("negative delay on new node not clamped: %+v", node)
	}
}

// TestSeededDispatchZeroAllocs pins the acceptance criterion that warm
// starts keep the zero-allocation dispatch hook: a graph seeded from a
// snapshot dispatches its working set without touching the allocator, just
// like an organically warmed one.
func TestSeededDispatchZeroAllocs(t *testing.T) {
	p := Params{StartDelay: 1, Threshold: 0.97, DecayInterval: 256}
	g, _, _ := newGraph(t, p)
	grow(g, 512)

	g2, _, _ := newGraph(t, p)
	g2.SeedNodes(g.Export())
	grow(g2, 8) // settle: first evaluations may emit, arenas already sized

	allocs := testing.AllocsPerRun(200, func() {
		grow(g2, 8)
	})
	if allocs != 0 {
		t.Errorf("seeded dispatch path allocates: %.2f allocs per 72 dispatches, want 0", allocs)
	}
}
