package profile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cfg"
	"repro/internal/stats"
)

// recorder captures signals for assertions.
type recorder struct {
	signals []Signal
}

func (r *recorder) OnSignal(sig Signal) { r.signals = append(r.signals, sig) }

func newGraph(t *testing.T, p Params) (*Graph, *recorder, *stats.Counters) {
	t.Helper()
	rec := &recorder{}
	ctr := &stats.Counters{}
	g, err := New(p, ctr, rec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g, rec, ctr
}

// feed drives the graph with a block sequence (consecutive dispatches).
func feed(g *Graph, blocks ...cfg.BlockID) {
	for i := 1; i < len(blocks); i++ {
		g.OnDispatch(blocks[i-1], blocks[i])
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{StartDelay: -1, Threshold: 0.9, DecayInterval: 256},
		{StartDelay: 1, Threshold: 0, DecayInterval: 256},
		{StartDelay: 1, Threshold: 1.5, DecayInterval: 256},
		{StartDelay: 1, Threshold: 0.9, DecayInterval: 0},
	}
	for _, p := range bad {
		if _, err := New(p, nil, nil); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestNodeAndEdgeCreation(t *testing.T) {
	g, _, ctr := newGraph(t, Params{StartDelay: 1, Threshold: 0.97, DecayInterval: 256})
	// Sequence 1,2,3: creates nodes (1,2) and (2,3) and edge between them.
	feed(g, 1, 2, 3)
	n12 := g.Node(1, 2)
	n23 := g.Node(2, 3)
	if n12 == nil || n23 == nil {
		t.Fatal("nodes not created")
	}
	if len(n12.Edges) != 1 || n12.Edges[0].To != n23 || n12.Edges[0].Z != 3 {
		t.Fatalf("edge E_123 wrong: %+v", n12.Edges)
	}
	if len(n23.In) != 1 || n23.In[0].Owner != n12 {
		t.Error("in-edge not linked")
	}
	if ctr.NodesCreated != 2 || ctr.EdgesCreated != 1 {
		t.Errorf("counters: nodes %d edges %d", ctr.NodesCreated, ctr.EdgesCreated)
	}
	if n12.Total != 1 || n12.Edges[0].Count != 1 {
		t.Errorf("counts: total %d edge %d", n12.Total, n12.Edges[0].Count)
	}
}

func TestInlineCacheFastPath(t *testing.T) {
	g, _, _ := newGraph(t, Params{StartDelay: 1, Threshold: 0.97, DecayInterval: 1 << 30})
	for i := 0; i < 100; i++ {
		feed(g, 1, 2, 3)
		g.ResetContext()
	}
	n12 := g.Node(1, 2)
	if n12.Best == nil || n12.Best.Z != 3 {
		t.Fatal("inline cache not set to the hot successor")
	}
	if n12.Total != 100 {
		t.Errorf("total = %d, want 100", n12.Total)
	}
}

func TestStartStateDelay(t *testing.T) {
	g, rec, _ := newGraph(t, Params{StartDelay: 10, Threshold: 0.97, DecayInterval: 1 << 30})
	for i := 0; i < 9; i++ {
		feed(g, 1, 2, 3)
		g.ResetContext()
	}
	n12 := g.Node(1, 2)
	if n12.State != StateNew {
		t.Fatalf("state after 9 executions = %v, want new", n12.State)
	}
	if len(rec.signals) != 0 {
		t.Fatalf("signalled before delay expiry: %v", rec.signals)
	}
	feed(g, 1, 2, 3)
	if n12.State != StateUnique {
		t.Fatalf("state after 10 executions = %v, want unique", n12.State)
	}
	if len(rec.signals) != 1 {
		t.Fatalf("signals = %d, want 1 (new->unique)", len(rec.signals))
	}
	sig := rec.signals[0]
	if sig.Node != n12 || sig.OldState != StateNew || sig.NewState != StateUnique || sig.NewBest != 3 {
		t.Errorf("signal contents wrong: %+v", sig)
	}
}

func TestStateClassification(t *testing.T) {
	// Node (1,2) with two successors: 3 dominant, 4 rare.
	g, _, _ := newGraph(t, Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 256})
	for i := 0; i < 255; i++ {
		if i%50 == 49 {
			feed(g, 1, 2, 4)
		} else {
			feed(g, 1, 2, 3)
		}
		g.ResetContext()
	}
	// Force the decay evaluation on execution 256.
	feed(g, 1, 2, 3)
	g.ResetContext()
	n12 := g.Node(1, 2)
	if n12.State != StateStrong {
		t.Errorf("state = %v, want strong (dominant ratio ~0.98)", n12.State)
	}
	if n12.Best == nil || n12.Best.Z != 3 {
		t.Error("best successor should be 3")
	}

	// Now a 50/50 node: should be weak after decay.
	g2, _, _ := newGraph(t, Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 256})
	for i := 0; i < 256; i++ {
		if i%2 == 0 {
			feed(g2, 1, 2, 3)
		} else {
			feed(g2, 1, 2, 4)
		}
		g2.ResetContext()
	}
	n := g2.Node(1, 2)
	if n.State != StateWeak {
		t.Errorf("50/50 node state = %v, want weak", n.State)
	}
}

func TestDecayHalvesCountsAndPrunes(t *testing.T) {
	p := Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 256}
	g, _, ctr := newGraph(t, p)
	// One rare successor early, then only the dominant one.
	feed(g, 1, 2, 4)
	g.ResetContext()
	for i := 0; i < 255; i++ {
		feed(g, 1, 2, 3)
		g.ResetContext()
	}
	n := g.Node(1, 2)
	if ctr.DecayChecks != 1 {
		t.Fatalf("decay checks = %d, want 1", ctr.DecayChecks)
	}
	// After one decay: edge(3) 255>>1=127, edge(4) 1>>1=0 -> pruned.
	if len(n.Edges) != 1 || n.Edges[0].Z != 3 {
		t.Fatalf("edges after decay: %+v", n.Edges)
	}
	if n.Total != 127 {
		t.Errorf("total after decay = %d, want 127", n.Total)
	}
	if n.State != StateUnique {
		t.Errorf("state = %v, want unique after prune", n.State)
	}
	// The pruned edge must also disappear from the target's in-list.
	n24 := g.Node(2, 4)
	if len(n24.In) != 0 {
		t.Error("pruned edge still in target's in-list")
	}
}

func TestContextInvalidationRestarts(t *testing.T) {
	g, _, _ := newGraph(t, Params{StartDelay: 1, Threshold: 0.97, DecayInterval: 256})
	feed(g, 1, 2, 3)
	// A dispatch whose from does not match the context's Y restarts the
	// context without recording a bogus correlation.
	g.OnDispatch(7, 8)
	n78 := g.Node(7, 8)
	if n78 == nil {
		t.Fatal("restart did not create the new context")
	}
	if n78.Total != 0 {
		t.Errorf("restart should not bump the new node: total=%d", n78.Total)
	}
	n23 := g.Node(2, 3)
	if len(n23.Edges) != 0 {
		t.Error("restart recorded a correlation across the discontinuity")
	}
}

func TestBestChangeSignals(t *testing.T) {
	p := Params{StartDelay: 1, Threshold: 0.6, DecayInterval: 64}
	g, rec, _ := newGraph(t, p)
	// Phase 1: successor 3 dominates.
	for i := 0; i < 256; i++ {
		feed(g, 1, 2, 3)
		g.ResetContext()
	}
	base := len(rec.signals)
	// Phase 2: successor 4 takes over; decay must flip Best and signal.
	for i := 0; i < 1024; i++ {
		feed(g, 1, 2, 4)
		g.ResetContext()
	}
	n := g.Node(1, 2)
	if n.Best == nil || n.Best.Z != 4 {
		t.Fatalf("best after phase change = %+v, want 4", n.Best)
	}
	if len(rec.signals) <= base {
		t.Error("phase change produced no signal")
	}
}

func TestUniqueStrongFlipDoesNotSignal(t *testing.T) {
	// A loop branch whose exit edge appears rarely: the node oscillates
	// between unique (exit pruned) and strong (exit present), but the best
	// successor never changes, so no signals should fire after the first.
	p := Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64}
	g, rec, _ := newGraph(t, p)
	for i := 0; i < 4096; i++ {
		if i%300 == 299 {
			feed(g, 1, 2, 4) // rare exit
		} else {
			feed(g, 1, 2, 3) // loop back
		}
		g.ResetContext()
	}
	if len(rec.signals) > 1 {
		t.Errorf("unique<->strong oscillation produced %d signals, want 1", len(rec.signals))
	}
}

func TestStrongIn(t *testing.T) {
	g, _, _ := newGraph(t, Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64})
	for i := 0; i < 256; i++ {
		feed(g, 1, 2, 3, 4)
		g.ResetContext()
	}
	n23 := g.Node(2, 3)
	strong := n23.StrongIn()
	if len(strong) != 1 || strong[0].Owner != g.Node(1, 2) {
		t.Errorf("StrongIn = %v", strong)
	}
}

func TestAcknowledgeSuppressesRepeatSignal(t *testing.T) {
	g, rec, _ := newGraph(t, Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64})
	for i := 0; i < 128; i++ {
		feed(g, 1, 2, 3)
		g.ResetContext()
	}
	n := g.Node(1, 2)
	base := len(rec.signals)
	n.Acknowledge()
	for i := 0; i < 512; i++ {
		feed(g, 1, 2, 3)
		g.ResetContext()
	}
	if len(rec.signals) != base {
		t.Errorf("stable node signalled %d more times after acknowledge", len(rec.signals)-base)
	}
}

func TestEdgeToAndCorrelations(t *testing.T) {
	g, _, _ := newGraph(t, Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 1 << 30})
	for i := 0; i < 3; i++ {
		feed(g, 1, 2, 3)
		g.ResetContext()
	}
	feed(g, 1, 2, 4)
	n := g.Node(1, 2)
	e3 := n.EdgeTo(3)
	e4 := n.EdgeTo(4)
	if e3 == nil || e4 == nil || n.EdgeTo(9) != nil {
		t.Fatal("EdgeTo wrong")
	}
	if e3.Correlation() != 0.75 || e4.Correlation() != 0.25 {
		t.Errorf("correlations = %v, %v; want 0.75, 0.25", e3.Correlation(), e4.Correlation())
	}
	if n.BestCorrelation() != 0.75 {
		t.Errorf("best correlation = %v", n.BestCorrelation())
	}
}

func TestDumpDOT(t *testing.T) {
	g, _, _ := newGraph(t, Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 1 << 30})
	for i := 0; i < 10; i++ {
		feed(g, 1, 2, 3)
		g.ResetContext()
	}
	dot := g.DumpDOT(1)
	if dot == "" || dot[:7] != "digraph" {
		t.Errorf("DOT output malformed: %q", dot)
	}
	// High threshold filters everything.
	if g.DumpDOT(10000) == dot {
		t.Error("minTotal filter had no effect")
	}
}

// TestPropertyTotalEqualsEdgeSum: the invariant Total == Σ edge.Count holds
// under arbitrary dispatch streams, decays included.
func TestPropertyTotalEqualsEdgeSum(t *testing.T) {
	f := func(seed int64, delayPick, decayPick uint8) bool {
		r := rand.New(rand.NewSource(seed))
		delays := []int32{1, 4, 64}
		decays := []uint32{16, 64, 256}
		p := Params{
			StartDelay:    delays[int(delayPick)%len(delays)],
			Threshold:     0.95,
			DecayInterval: decays[int(decayPick)%len(decays)],
		}
		g, err := New(p, nil, nil)
		if err != nil {
			return false
		}
		// Random walk over a small block universe with restarts.
		cur := cfg.BlockID(r.Intn(8))
		for i := 0; i < 5000; i++ {
			if r.Intn(100) == 0 {
				g.ResetContext()
				cur = cfg.BlockID(r.Intn(8))
				continue
			}
			next := cfg.BlockID(r.Intn(8))
			g.OnDispatch(cur, next)
			cur = next
		}
		ok := true
		g.Nodes(func(n *Node) {
			var sum uint16
			for _, e := range n.Edges {
				if e.Count == 0 {
					ok = false // zero edges must be pruned at decay
				}
				sum += e.Count
			}
			// Between decays the node may have accumulated more executions
			// than edge increments only when correlations were not recorded
			// (context restarts); Total may exceed the sum never — edges
			// are bumped with the node.
			if sum != n.Total {
				ok = false
			}
			// In-edge symmetry: every in-edge's To points back here.
			for _, e := range n.In {
				if e.To != n {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBestIsArgmaxAfterDecay: after any decay evaluation, Best has
// the maximal count among remaining edges.
func TestPropertyBestIsArgmaxAfterDecay(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, err := New(Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 32}, nil, nil)
		if err != nil {
			return false
		}
		cur := cfg.BlockID(r.Intn(6))
		for i := 0; i < 3000; i++ {
			next := cfg.BlockID(r.Intn(6))
			g.OnDispatch(cur, next)
			cur = next
		}
		ok := true
		g.Nodes(func(n *Node) {
			if n.State == StateNew || n.Best == nil {
				return
			}
			// Best must be at least as large as every edge except for
			// counts accumulated since the last evaluation (the fast path
			// bumps Best only if predicted; an unpredicted edge can exceed
			// it by at most DecayInterval-1 before re-evaluation). We check
			// the weaker, always-true property: Best is one of the edges.
			found := false
			for _, e := range n.Edges {
				if e == n.Best {
					found = true
				}
			}
			if !found {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKeyPacksPairs(t *testing.T) {
	if Key(1, 2) == Key(2, 1) {
		t.Error("Key is symmetric")
	}
	if Key(0, 0) != 0 {
		t.Error("Key(0,0) != 0")
	}
	if Key(1, 0) != 1<<32 {
		t.Errorf("Key(1,0) = %x", Key(1, 0))
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateNew: "new", StateWeak: "weak", StateStrong: "strong", StateUnique: "unique",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if !StateStrong.Correlated() || !StateUnique.Correlated() {
		t.Error("strong/unique must be correlated")
	}
	if StateNew.Correlated() || StateWeak.Correlated() {
		t.Error("new/weak must not be correlated")
	}
}

func TestStaticHintSeedsUniqueWithZeroDelay(t *testing.T) {
	// Block 2 is statically proven single-successor: its nodes must be born
	// unique and signal on the very first recorded correlation, with zero
	// start-delay dispatches consumed. Block 5 is the unhinted control and
	// must wait out the full delay.
	g, rec, ctr := newGraph(t, Params{StartDelay: 64, Threshold: 0.97, DecayInterval: 1 << 30})
	g.SetStaticHints([]cfg.BlockID{2})

	feed(g, 1, 2, 3)
	n12 := g.Node(1, 2)
	if n12 == nil {
		t.Fatal("node (1,2) not created")
	}
	if n12.State != StateUnique {
		t.Fatalf("hinted node state = %v, want unique", n12.State)
	}
	if n12.startDelay >= 0 {
		t.Fatalf("hinted node consumed start delay (startDelay=%d)", n12.startDelay)
	}
	if ctr.NodesSeededUnique != 1 {
		t.Fatalf("NodesSeededUnique = %d, want 1", ctr.NodesSeededUnique)
	}
	if len(rec.signals) != 1 {
		t.Fatalf("want 1 signal after first correlation, got %d", len(rec.signals))
	}
	sig := rec.signals[0]
	if sig.Node != n12 || sig.NewState != StateUnique || sig.NewBest != 3 {
		t.Fatalf("bad signal: %+v", sig)
	}

	// Control: an unhinted node stays StateNew until the delay expires.
	g.ResetContext()
	feed(g, 4, 5, 6)
	n45 := g.Node(4, 5)
	if n45.State != StateNew {
		t.Fatalf("unhinted node state = %v, want new", n45.State)
	}
	if n45.startDelay != 63 {
		t.Fatalf("unhinted node startDelay = %d, want 63", n45.startDelay)
	}
	if len(rec.signals) != 1 {
		t.Fatalf("unhinted node signaled early: %d signals", len(rec.signals))
	}
}

func TestStaticHintSeededCounter(t *testing.T) {
	g, _, ctr := newGraph(t, Params{StartDelay: 64, Threshold: 0.97, DecayInterval: 1 << 30})
	g.SetStaticHints([]cfg.BlockID{2, 3})
	feed(g, 1, 2, 3, 7)
	// Nodes created: (1,2) hinted, (2,3) hinted, (3,7) not.
	if ctr.NodesCreated != 3 {
		t.Fatalf("NodesCreated = %d, want 3", ctr.NodesCreated)
	}
	if ctr.NodesSeededUnique != 2 {
		t.Fatalf("NodesSeededUnique = %d, want 2", ctr.NodesSeededUnique)
	}
}

func TestStaticHintDecayKeepsNodeLive(t *testing.T) {
	// After seeding, dynamic evolution proceeds as usual: decay halves the
	// counts but the unique classification survives re-evaluation.
	g, _, _ := newGraph(t, Params{StartDelay: 64, Threshold: 0.97, DecayInterval: 8})
	g.SetStaticHints([]cfg.BlockID{2})
	for i := 0; i < 100; i++ {
		feed(g, 1, 2, 3)
		g.ResetContext()
	}
	n12 := g.Node(1, 2)
	if n12.State != StateUnique {
		t.Fatalf("state after decay churn = %v, want unique", n12.State)
	}
}
