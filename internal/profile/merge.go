package profile

import (
	"fmt"

	"repro/internal/stats"
)

// This file is the profiler's side of multicore scale-out (ROADMAP item:
// per-worker sharding with epoch merge). Under parallel traffic every serve
// worker owns a private Graph — a shard — so the per-dispatch hot path never
// crosses a goroutine boundary; at phase boundaries an epoch coordinator
// sums the shards' decayed counters into a fresh merged graph (Absorb) and
// re-derives node states, signals and start-delays from the combined history
// (DeriveStates). Merging is non-destructive: shards are only read, never
// drained, so a shard's own decay dynamics are untouched by the merge.

// SetCounters rebinds the graph's counter sink. A graph that outlives a
// single session (a worker shard) is rebound to each run's fresh counters so
// per-request accounting stays exact while the learned state accumulates.
// Never call during a run; nil rebinds to a discarded internal record.
func (g *Graph) SetCounters(ctr *stats.Counters) {
	if ctr == nil {
		ctr = &stats.Counters{}
	}
	g.ctr = ctr
}

// Absorb sums src's decayed history into g: every src node is materialized
// in g (merging with what earlier Absorb calls contributed), edge counters
// add with 16-bit saturation, and start-delay consumption accumulates — a
// branch observed 40 times by each of two shards has 80 observations toward
// the merged delay quota. Node states are deliberately not copied; call
// DeriveStates once every shard is absorbed so classification reflects the
// combined history rather than any one shard's view.
//
// src is read but never modified. Both graphs must share the same
// parameters, since every counter and delay in a graph is relative to them.
// Returns the number of src nodes visited.
func (g *Graph) Absorb(src *Graph) (int, error) {
	if src.params != g.params {
		return 0, fmt.Errorf("profile: cannot absorb shard with params %+v into graph with params %+v",
			src.params, g.params)
	}
	visited := 0
	for _, n := range src.all {
		visited++
		dst := g.getNode(n.X, n.Y)
		g.mergeStartDelay(dst, n)
		for _, e := range n.Edges {
			if e.Count == 0 {
				continue
			}
			if de := dst.EdgeTo(e.Z); de != nil {
				de.Count = satAdd16(de.Count, e.Count)
			} else {
				g.seedEdge(dst, e.Z, e.Count)
			}
		}
		var total uint32
		for _, e := range dst.Edges {
			total += uint32(e.Count)
		}
		if total > uint32(^uint16(0)) {
			total = uint32(^uint16(0))
		}
		dst.Total = uint16(total)
	}
	return visited, nil
}

// mergeStartDelay folds src's delay consumption into dst. Residual delays
// count down from Params.StartDelay, so the executions a shard has observed
// are StartDelay − residual; those observations subtract from the merged
// node's remaining quota. Hint-born nodes (negative sentinel) carry no quota
// on either side.
func (g *Graph) mergeStartDelay(dst, src *Node) {
	if dst.startDelay < 0 {
		return // hint-born unique: no delay to consume
	}
	observed := g.params.StartDelay // a hint-born src satisfies the quota outright
	if src.startDelay >= 0 {
		observed = g.params.StartDelay - src.startDelay
	}
	if observed <= 0 {
		return
	}
	dst.startDelay -= observed
	if dst.startDelay < 0 {
		dst.startDelay = 0
	}
}

// satAdd16 adds two 16-bit counters, saturating rather than wrapping, so a
// merge across many shards cannot corrupt correlation ratios.
func satAdd16(a, b uint16) uint16 {
	if s := uint32(a) + uint32(b); s <= uint32(^uint16(0)) {
		return uint16(s)
	}
	return ^uint16(0)
}

// DeriveStates classifies every node against the merged history and raises
// the ordinary state-change signals: nodes whose combined start-delay quota
// is satisfied are evaluated exactly like an organically warmed node, so a
// listener bound to this graph (the merged trace cache) sees one signal per
// correlated node and builds traces only where the shards agree. A branch
// that is hot on one shard but contradicted by another dilutes below the
// threshold here and stays weak — the "globally hot" filter. Nodes still
// inside their merged delay quota remain StateNew, exactly as a
// single-threaded profiler would leave a rare branch.
//
// Call once, after the last Absorb and before exporting or seeding from the
// merged graph.
func (g *Graph) DeriveStates() {
	for _, n := range g.all {
		if len(n.Edges) == 0 {
			continue
		}
		if n.State == StateNew && n.startDelay > 0 {
			continue // globally still rare
		}
		g.evaluate(n)
	}
}
