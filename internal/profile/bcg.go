// Package profile implements the paper's branch correlation graph (BCG)
// profiler (§3.5, §4.1).
//
// The BCG is "effectively a depth one per address history table": for every
// pair of basic blocks (X, Y) executed in sequence there is a node N_XY with
// a 16-bit execution counter and a state tag, and for every observed triple
// (X, Y, Z) a directed edge E_XYZ from N_XY to N_YZ whose 16-bit counter
// records how often branch (Y, Z) followed branch (X, Y). Counters are kept
// current through periodic exponential decay: every DecayInterval (256)
// executions of a node, all its counters shift right one bit, which
// preserves the relative ratios while doubling the weight of recent
// behaviour. During decay the node's state and maximally correlated
// successor are re-evaluated; if either changed, the profiler signals the
// trace cache.
//
// The profiler attaches to the interpreter's block dispatch through the
// vm.DispatchHook interface. Its per-dispatch fast path mirrors the paper's
// inline cache: the current branch context caches the successor believed
// most likely, and a matching dispatch costs two comparisons, two pointer
// loads and an increment.
package profile

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/obs"
	"repro/internal/stats"
)

// State is a node's correlation summary, "in descending degree of
// correlation: unique, strongly correlated, weakly correlated, and newly
// created".
type State uint8

const (
	// StateNew: the start-state delay has not yet expired; the branch is
	// still considered rare and may not appear in traces.
	StateNew State = iota
	// StateWeak: the best successor's correlation is below the threshold.
	StateWeak
	// StateStrong: the best successor's correlation is at or above the
	// threshold, but other successors have been observed recently.
	StateStrong
	// StateUnique: a single successor in the (decayed) history.
	StateUnique
)

func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateWeak:
		return "weak"
	case StateStrong:
		return "strong"
	case StateUnique:
		return "unique"
	}
	return "invalid"
}

// Correlated reports whether the state allows the node's best edge to be
// followed during trace construction.
func (s State) Correlated() bool { return s == StateStrong || s == StateUnique }

// Edge is a branch correlation E_XYZ: "given that the last branch taken was
// (X, Y), branch (Y, Z) followed Count times (decayed)". Edges are allocated
// from the graph's chunked arena and recycled through a free list when decay
// prunes them, so steady-state profiling performs no heap allocation.
type Edge struct {
	Owner *Node // N_XY
	To    *Node // N_YZ
	Z     cfg.BlockID
	Count uint16
}

// Correlation returns Count / Owner.Total, the conditional probability
// estimate for this successor.
func (e *Edge) Correlation() float64 {
	if e.Owner.Total == 0 {
		return 0
	}
	return float64(e.Count) / float64(e.Owner.Total)
}

// inlineEdges is the per-node successor capacity before the edge list spills
// to the heap. Almost every branch context has one or two successors (the
// whole premise of trace construction), so four pointers inline keeps the
// common case free of separate edge-list allocations.
const inlineEdges = 4

// Node is a branch context N_XY. Field order is deliberate: everything the
// per-dispatch fast path touches (Y, Best, Total, the countdowns, State)
// lives in the node's first cache line; the spillable edge lists and the
// inline backing arrays follow.
type Node struct {
	X, Y cfg.BlockID

	// Best is the inline-cached most likely successor edge.
	Best *Edge

	// Total is the decayed execution counter; the invariant
	// Total == Σ edge.Count holds at all times.
	Total uint16
	// State is the current correlation summary.
	State State
	// ackState/ackBest are the last (state, best successor) acknowledged by
	// the trace cache; a signal is raised only when the evaluation diverges
	// from them, which prevents cascades of identical signals (§4.2).
	ackState State
	// startDelay counts down executions until the node leaves StateNew.
	startDelay int32
	// untilDecay counts down executions until the next periodic decay.
	untilDecay uint32
	ackBest    cfg.BlockID

	// Edges are the observed successor correlations, sorted by Z. Edges[0]
	// is not special; Best caches the argmax.
	Edges []*Edge
	// In lists edges arriving at this node (E_WXY for predecessors W);
	// trace construction backtracks along these.
	In []*Edge

	// ein/iin are the inline backing arrays Edges and In start on; append
	// spills them to the heap only when a node exceeds inlineEdges
	// successors or predecessors.
	ein [inlineEdges]*Edge
	iin [inlineEdges]*Edge
}

// Key packs a block pair into one ordered 64-bit value (diagnostics and
// deterministic ordering; the node index itself is the dense two-level
// rows[X][Y] table).
func Key(x, y cfg.BlockID) uint64 { return uint64(x)<<32 | uint64(y) }

// Signal describes a state change delivered to the trace cache.
type Signal struct {
	Node     *Node
	OldState State
	NewState State
	OldBest  cfg.BlockID // NoBlock if none
	NewBest  cfg.BlockID
}

// Listener receives state-change signals. The trace cache implements it.
type Listener interface {
	OnSignal(sig Signal)
}

// Params are the algorithm's two tunables plus the decay interval.
type Params struct {
	// StartDelay is how many times a branch must execute before it can be
	// included in a trace (the paper evaluates 1, 64 and 4096).
	StartDelay int32
	// Threshold is the minimum completion probability of a trace and the
	// correlation bound separating strong from weak (0.95 .. 1.0).
	Threshold float64
	// DecayInterval is the number of node executions between decays
	// (paper: 256).
	DecayInterval uint32
}

// DefaultParams returns the configuration the paper found best: delay 64,
// threshold 97%, decay every 256 executions.
func DefaultParams() Params {
	return Params{StartDelay: 64, Threshold: 0.97, DecayInterval: 256}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.StartDelay < 0 {
		return fmt.Errorf("profile: negative start delay %d", p.StartDelay)
	}
	if p.Threshold <= 0 || p.Threshold > 1 {
		return fmt.Errorf("profile: threshold %v out of (0, 1]", p.Threshold)
	}
	if p.DecayInterval == 0 {
		return fmt.Errorf("profile: zero decay interval")
	}
	return nil
}

// nodeChunk/edgeChunk size the arena chunks nodes and edges are allocated
// from. Chunked allocation keeps node/edge creation at one heap allocation
// per chunk instead of one per element, and clusters hot nodes and edges on
// adjacent cache lines.
const (
	nodeChunk = 256
	edgeChunk = 512
)

// Graph is the branch correlation graph plus the dispatch-time profiler.
//
// Node storage is a dense two-level index keyed by global block ID:
// rows[X][Y] is the node N_XY (or nil), so the (X, Y) lookup on the dispatch
// path is two slice indexings instead of a hashed map probe. Rows grow
// lazily and geometrically; Reserve pre-sizes the outer level when the
// program's block count is known up front.
type Graph struct {
	params   Params
	rows     [][]*Node
	all      []*Node // every node, in creation order
	ctr      *stats.Counters
	listener Listener

	// sink, when set, receives an EvNodeState event for every signal — the
	// observability mirror of the Listener. It is only touched on the
	// signalling slow path; the per-dispatch fast path never sees it.
	sink obs.Sink

	// cur is the current branch context — "the branch context pointer which
	// reflects the last branch taken by the program".
	cur *Node

	// nodeMem/edgeMem are the active arena chunks; edgeFree recycles edges
	// pruned by decay, so steady-state phase churn allocates nothing.
	nodeMem  []Node
	edgeMem  []Edge
	edgeFree []*Edge

	// hintUnique[y] marks block y as having exactly one static successor
	// (per the CFG dataflow pass): nodes N_XY for such a Y are created
	// pre-classified unique, skipping the start-state delay.
	hintUnique []bool
}

// New creates an empty graph. ctr and listener may be nil.
func New(params Params, ctr *stats.Counters, listener Listener) (*Graph, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if ctr == nil {
		ctr = &stats.Counters{}
	}
	return &Graph{
		params:   params,
		ctr:      ctr,
		listener: listener,
	}, nil
}

// Reserve pre-sizes the index's outer level for a program with numBlocks
// global block IDs, avoiding growth reallocations during the run. Optional;
// the index grows on demand without it.
func (g *Graph) Reserve(numBlocks int) {
	if numBlocks > len(g.rows) {
		rows := make([][]*Node, numBlocks)
		copy(rows, g.rows)
		g.rows = rows
	}
}

// SetStaticHints marks blocks with exactly one static CFG successor. A
// branch out of such a block can only ever be observed with one target, so
// its nodes are born unique: the first dispatch recording a correlation
// evaluates (and signals) immediately instead of waiting out the start
// delay. Dynamic evolution — decay, eviction, re-evaluation — then treats
// the node exactly like any organically classified one. Call before the
// profiled run; hints accumulate across calls.
func (g *Graph) SetStaticHints(unique []cfg.BlockID) {
	for _, y := range unique {
		if y == cfg.NoBlock {
			continue
		}
		if int(y) >= len(g.hintUnique) {
			grown := make([]bool, growTo(int(y)+1))
			copy(grown, g.hintUnique)
			g.hintUnique = grown
		}
		g.hintUnique[y] = true
	}
}

// SetSink attaches an event sink; every profiler signal additionally emits
// an obs.EvNodeState event describing the transition. Call before the run;
// nil detaches.
func (g *Graph) SetSink(s obs.Sink) { g.sink = s }

// Params returns the graph's configuration.
func (g *Graph) Params() Params { return g.params }

// NumNodes returns the number of branch contexts discovered so far.
func (g *Graph) NumNodes() int { return len(g.all) }

// Node returns the branch context for the pair (x, y), or nil.
func (g *Graph) Node(x, y cfg.BlockID) *Node {
	if int(x) < len(g.rows) {
		if row := g.rows[x]; int(y) < len(row) {
			return row[y]
		}
	}
	return nil
}

// Nodes calls fn for every node, in creation order.
func (g *Graph) Nodes(fn func(*Node)) {
	for _, n := range g.all {
		fn(n)
	}
}

// ResetContext clears the current branch context (used at run boundaries).
func (g *Graph) ResetContext() { g.cur = nil }

// OnDispatch implements vm.DispatchHook. from→to is the dispatch edge that
// just executed; the previous context (X, Y) satisfies Y == from.
//
//tracevm:hotpath
func (g *Graph) OnDispatch(from, to cfg.BlockID) {
	ctx := g.cur
	if ctx == nil || ctx.Y != from {
		// First dispatch of a run, or the context was invalidated: restart
		// from the node for this branch without recording a correlation.
		g.cur = g.getNode(from, to)
		return
	}

	// Fast path: the inline cache predicted this successor.
	if best := ctx.Best; best != nil && best.Z == to {
		bumpEdge(best)
		g.bumpNode(ctx)
		g.cur = best.To
		return
	}

	// Slow path: search the node's other correlations. Edges are sorted by
	// Z, so the scan stops at the insertion point on a miss.
	edges := ctx.Edges
	i := 0
	for ; i < len(edges); i++ {
		e := edges[i]
		if e.Z >= to {
			if e.Z == to {
				bumpEdge(e)
				g.bumpNode(ctx)
				g.cur = e.To
				return
			}
			break
		}
	}

	// Never seen in this context: construct a new branch correlation and
	// insert it into the branch context at its sorted position.
	e := g.allocEdge()
	//tracevm:allow-alloc (value copy into arena-backed edge, not a heap allocation)
	*e = Edge{Owner: ctx, To: g.getNode(from, to), Z: to, Count: 1}
	if len(ctx.Edges) == cap(ctx.Edges) {
		g.ctr.EdgeSpills++
	}
	ctx.Edges = append(ctx.Edges, nil) //tracevm:allow-alloc (cold: first sighting of a successor; spills past the inline array are counted)
	copy(ctx.Edges[i+1:], ctx.Edges[i:])
	ctx.Edges[i] = e
	e.To.In = append(e.To.In, e) //tracevm:allow-alloc (cold: same first-sighting path)
	g.ctr.EdgesCreated++
	if ctx.Best == nil {
		ctx.Best = e
	}
	if ctx.startDelay < 0 && len(ctx.Edges) == 1 {
		// A hint-seeded node just observed its first (and statically only)
		// successor: confirm the unique classification and signal the trace
		// cache now, with zero start-delay dispatches.
		g.evaluate(ctx)
	}
	g.bumpNode(ctx)
	g.cur = e.To
}

// allocEdge takes an edge from the free list or the arena.
func (g *Graph) allocEdge() *Edge {
	if n := len(g.edgeFree); n > 0 {
		e := g.edgeFree[n-1]
		g.edgeFree = g.edgeFree[:n-1]
		return e
	}
	if len(g.edgeMem) == cap(g.edgeMem) {
		g.edgeMem = make([]Edge, 0, edgeChunk)
	}
	g.edgeMem = g.edgeMem[:len(g.edgeMem)+1]
	return &g.edgeMem[len(g.edgeMem)-1]
}

// getNode returns (creating if necessary) the node N_xy.
func (g *Graph) getNode(x, y cfg.BlockID) *Node {
	if n := g.Node(x, y); n != nil {
		return n
	}
	if int(x) >= len(g.rows) {
		g.rows = append(g.rows, make([][]*Node, int(x)+1-len(g.rows))...)
	}
	if row := g.rows[x]; int(y) >= len(row) {
		grown := make([]*Node, growTo(int(y)+1))
		copy(grown, row)
		g.rows[x] = grown
	}

	if len(g.nodeMem) == cap(g.nodeMem) {
		g.nodeMem = make([]Node, 0, nodeChunk)
	}
	g.nodeMem = g.nodeMem[:len(g.nodeMem)+1]
	n := &g.nodeMem[len(g.nodeMem)-1]
	*n = Node{
		X:          x,
		Y:          y,
		State:      StateNew,
		startDelay: g.params.StartDelay,
		untilDecay: g.params.DecayInterval,
		ackState:   StateNew,
		ackBest:    cfg.NoBlock,
	}
	n.Edges = n.ein[:0:inlineEdges]
	n.In = n.iin[:0:inlineEdges]
	if n.startDelay <= 0 {
		// A delay of zero (or the paper's "delay 1" with its single
		// mandatory execution handled below) still starts in StateNew until
		// first evaluated.
		n.startDelay = 0
	}
	if int(y) < len(g.hintUnique) && g.hintUnique[y] {
		// Statically proven single-successor block: born unique, no start
		// delay. startDelay = -1 tags the node as hint-seeded so the first
		// recorded correlation evaluates immediately; ackState stays
		// StateNew so that evaluation signals the trace cache.
		n.State = StateUnique
		n.startDelay = -1
		g.ctr.NodesSeededUnique++
	}
	g.rows[x][y] = n
	g.all = append(g.all, n)
	g.ctr.NodesCreated++
	return n
}

// growTo rounds a row length up to the next power of two, bounding row
// reallocations to O(log numBlocks) per context.
func growTo(n int) int {
	c := 8
	for c < n {
		c <<= 1
	}
	return c
}

// bumpEdge increments a 16-bit correlation counter, saturating rather than
// wrapping; with the standard 256-dispatch decay the bound is never reached,
// but pathological decay intervals must not corrupt the ratios.
//
//tracevm:hotpath
func bumpEdge(e *Edge) {
	if e.Count < ^uint16(0) {
		e.Count++
	}
}

// bumpNode increments the node's execution counter, handles start-state
// expiry, and runs the periodic decay check.
//
//tracevm:hotpath
func (g *Graph) bumpNode(n *Node) {
	if n.Total < ^uint16(0) {
		n.Total++
	}
	if n.State == StateNew {
		if n.startDelay > 0 {
			n.startDelay--
		}
		if n.startDelay == 0 {
			// The branch has executed its delay quota: declare it "not
			// rare" and evaluate its correlation state.
			g.evaluate(n)
		}
	}
	n.untilDecay--
	if n.untilDecay == 0 {
		n.untilDecay = g.params.DecayInterval
		g.decay(n)
	}
}

// decay shifts every correlation one bit right, prunes forgotten successors,
// recomputes the node total from the invariant, and re-evaluates the state.
func (g *Graph) decay(n *Node) {
	g.ctr.DecayChecks++
	kept := n.Edges[:0]
	var total uint16
	for _, e := range n.Edges {
		e.Count >>= 1
		if e.Count == 0 {
			// Fully decayed: forget the correlation, unlink the in-edge,
			// and recycle the allocation.
			removeIn(e.To, e)
			if n.Best == e {
				n.Best = nil
			}
			*e = Edge{}
			g.edgeFree = append(g.edgeFree, e)
			continue
		}
		total += e.Count
		kept = append(kept, e)
	}
	n.Edges = kept
	n.Total = total
	if n.State != StateNew {
		g.evaluate(n)
	}
}

func removeIn(n *Node, e *Edge) {
	for i, x := range n.In {
		if x == e {
			n.In[i] = n.In[len(n.In)-1]
			n.In = n.In[:len(n.In)-1]
			return
		}
	}
}

// evaluate recomputes Best and State and signals the listener when the
// summary diverges from the last acknowledged one.
func (g *Graph) evaluate(n *Node) {
	oldState, oldBest := n.ackState, n.ackBest

	var best *Edge
	for _, e := range n.Edges {
		if best == nil || e.Count > best.Count {
			best = e
		}
	}
	n.Best = best

	switch {
	case best == nil:
		// All history decayed away; treat as weak with no prediction.
		n.State = StateWeak
	case len(n.Edges) == 1:
		n.State = StateUnique
	case float64(best.Count) >= g.params.Threshold*float64(n.Total):
		n.State = StateStrong
	default:
		n.State = StateWeak
	}

	newBest := cfg.NoBlock
	if best != nil {
		newBest = best.Z
	}
	// Only the maximally correlated branches are interesting to the trace
	// cache (§4.1.1): signal when the node crosses the correlated/weak
	// boundary, or when a correlated node's predicted successor changes.
	// A unique<->strong flip with the same successor changes nothing the
	// trace constructor would use, so it is not a state change — the flip
	// happens constantly on loop branches whose rare exit edge decays away
	// and reappears.
	oldCorr := oldState.Correlated()
	newCorr := n.State.Correlated()
	if oldCorr == newCorr && (!newCorr || newBest == oldBest) {
		n.ackState = n.State
		n.ackBest = newBest
		return
	}
	n.ackState = n.State
	n.ackBest = newBest
	g.ctr.Signals++
	if g.sink != nil {
		best := int64(obs.NoID)
		if newBest != cfg.NoBlock {
			best = int64(newBest)
		}
		g.sink.Emit(obs.Event{
			Type: obs.EvNodeState,
			Old:  uint8(oldState), New: uint8(n.State),
			X: int32(n.X), Y: int32(n.Y),
			TraceID: obs.NoID,
			Val:     best,
		})
	}
	if g.listener != nil {
		g.listener.OnSignal(Signal{
			Node:     n,
			OldState: oldState,
			NewState: n.State,
			OldBest:  oldBest,
			NewBest:  newBest,
		})
	}
}

// Acknowledge records that the trace cache has incorporated the node's
// current summary; identical future evaluations will not signal. The trace
// cache calls this for every node it touches during reconstruction, which is
// the paper's "all the instructions found to be related to the process have
// their state updated as their trace is currently up to date".
func (n *Node) Acknowledge() {
	n.ackState = n.State
	if n.Best != nil {
		n.ackBest = n.Best.Z
	} else {
		n.ackBest = cfg.NoBlock
	}
}

// Unacknowledge clears the trace cache's acknowledgement of this node, so
// the next evaluation signals even if the summary has not changed since. The
// cache calls this when budget pressure evicts a trace through this branch
// context: if the region is (or becomes) hot again, its next decay
// re-signals and the evicted trace is rebuilt on demand instead of being
// lost for good; a region that stays cold never decays and never re-signals,
// which is exactly the heat-aware behaviour eviction wants.
func (n *Node) Unacknowledge() {
	n.ackState = StateNew
	n.ackBest = cfg.NoBlock
}

// BestCorrelation returns the correlation of the cached best successor, or
// 0 when there is none.
func (n *Node) BestCorrelation() float64 {
	if n.Best == nil {
		return 0
	}
	return n.Best.Correlation()
}

// EdgeTo returns the correlation edge toward successor z, or nil. Edges are
// sorted by Z, so the scan stops early on a miss.
func (n *Node) EdgeTo(z cfg.BlockID) *Edge {
	for _, e := range n.Edges {
		if e.Z >= z {
			if e.Z == z {
				return e
			}
			break
		}
	}
	return nil
}

// StrongIn returns the incoming edges whose owner is correlated (strong or
// unique) with this node as its best successor — the edges trace
// construction backtracks along.
func (n *Node) StrongIn() []*Edge {
	var out []*Edge
	for _, e := range n.In {
		o := e.Owner
		if o.State.Correlated() && o.Best == e {
			out = append(out, e)
		}
	}
	return out
}

// DumpDOT renders the graph in Graphviz format; hot nodes only (Total >=
// minTotal) to keep output readable.
func (g *Graph) DumpDOT(minTotal int) string {
	var rows []*Node
	for _, n := range g.all {
		if int(n.Total) >= minTotal {
			rows = append(rows, n)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return Key(rows[i].X, rows[i].Y) < Key(rows[j].X, rows[j].Y) })
	s := "digraph bcg {\n"
	for _, n := range rows {
		s += fmt.Sprintf("  n%d_%d [label=\"(%d,%d)\\n%s total=%d\"];\n", n.X, n.Y, n.X, n.Y, n.State, n.Total)
		for _, e := range n.Edges {
			s += fmt.Sprintf("  n%d_%d -> n%d_%d [label=\"%d (%.2f)\"];\n", n.X, n.Y, e.To.X, e.To.Y, e.Count, e.Correlation())
		}
	}
	return s + "}\n"
}
