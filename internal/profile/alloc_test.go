package profile

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/obs"
	"repro/internal/stats"
)

// TestDispatchFastPathZeroAllocs pins the warmed OnDispatch fast path at
// zero allocations per call. The dense two-level index, node/edge arenas and
// inline edge arrays exist precisely so the hook appended to every block
// dispatch never touches the allocator once the graph has seen the
// program's working set.
func TestDispatchFastPathZeroAllocs(t *testing.T) {
	g, _, _ := newGraph(t, Params{StartDelay: 1, Threshold: 0.97, DecayInterval: 256})

	// A small loop nest: an inner hot cycle plus an alternating outer edge,
	// so the fast path exercises both the inline-cache hit and the sorted
	// edge-scan miss.
	warm := func(rounds int) {
		for r := 0; r < rounds; r++ {
			feed(g, 1, 2, 3, 4, 1, 2, 3, 5, 1)
		}
	}
	warm(512) // past the start delay and many decay cycles

	allocs := testing.AllocsPerRun(200, func() {
		warm(8) // 64 dispatches per run, crossing decay boundaries
	})
	if allocs != 0 {
		t.Errorf("warmed OnDispatch path allocates: %.2f allocs per 64 dispatches, want 0", allocs)
	}
}

// TestShardReuseZeroAllocs pins the per-worker shard path: a graph that
// outlives its session is rebound to each run's fresh counter record
// (SetCounters) and then dispatches against warmed arenas. Both the rebind
// and the warmed dispatches must cost zero allocations — shard reuse is the
// multicore hot path, and the whole point of sharding is that it inherits
// the single-threaded path's allocation profile untouched.
func TestShardReuseZeroAllocs(t *testing.T) {
	g, _, _ := newGraph(t, Params{StartDelay: 1, Threshold: 0.97, DecayInterval: 256})

	warm := func(rounds int) {
		for r := 0; r < rounds; r++ {
			feed(g, 1, 2, 3, 4, 1, 2, 3, 5, 1)
		}
	}
	warm(512)

	// One counter record per simulated run, allocated outside the pin —
	// the serving layer owns them; the shard only rebinds.
	ctrs := [2]stats.Counters{}
	run := 0
	allocs := testing.AllocsPerRun(200, func() {
		g.SetCounters(&ctrs[run%2])
		run++
		warm(8) // 64 dispatches per simulated run
	})
	if allocs != 0 {
		t.Errorf("shard reuse allocates: %.2f allocs per rebind+64 dispatches, want 0", allocs)
	}
	if ctrs[0].DecayChecks == 0 || ctrs[1].DecayChecks == 0 {
		t.Error("rebound counters recorded nothing; the pin is not exercising the rebind")
	}
}

// TestDispatchWithSinkZeroAllocs re-runs the fast-path pin with an event
// ring attached: tracing enabled but idle (a warmed graph signals no state
// changes) must cost the dispatch path nothing, and the occasional
// transition that does fire goes through obs.Ring.Emit, which is itself
// allocation-free.
func TestDispatchWithSinkZeroAllocs(t *testing.T) {
	g, _, _ := newGraph(t, Params{StartDelay: 1, Threshold: 0.97, DecayInterval: 256})
	g.SetSink(obs.NewRing(256))

	warm := func(rounds int) {
		for r := 0; r < rounds; r++ {
			feed(g, 1, 2, 3, 4, 1, 2, 3, 5, 1)
		}
	}
	warm(512)

	allocs := testing.AllocsPerRun(200, func() {
		warm(8)
	})
	if allocs != 0 {
		t.Errorf("OnDispatch with sink attached allocates: %.2f allocs per 64 dispatches, want 0", allocs)
	}
}

// TestPhaseChurnWithSinkZeroAllocs drives real state transitions (so events
// genuinely flow into the ring) and still demands zero allocations: the
// emitting slow path builds pointerless Event values into a preallocated
// buffer.
func TestPhaseChurnWithSinkZeroAllocs(t *testing.T) {
	g, _, _ := newGraph(t, Params{StartDelay: 1, Threshold: 0.97, DecayInterval: 64})
	ring := obs.NewRing(128)
	g.SetSink(ring)

	phase := func(z cfg.BlockID, rounds int) {
		for r := 0; r < rounds; r++ {
			feed(g, 1, 2, z, 1)
		}
	}
	for i := 0; i < 16; i++ {
		phase(3, 600)
		phase(4, 600)
	}
	before := ring.Total()

	allocs := testing.AllocsPerRun(20, func() {
		phase(3, 600)
		phase(4, 600)
	})
	if allocs != 0 {
		t.Errorf("phase churn with sink allocates: %.2f allocs per phase pair, want 0", allocs)
	}
	if ring.Total() == before {
		t.Error("phase churn emitted no events; the pin is not exercising the emit path")
	}
}

// TestDecayPruneRecycleZeroAllocs drives phase changes that repeatedly prune
// and recreate edges: decay's free list must recycle pruned edges so phase
// churn stays allocation-free once the peak working set has been reached.
func TestDecayPruneRecycleZeroAllocs(t *testing.T) {
	g, _, _ := newGraph(t, Params{StartDelay: 1, Threshold: 0.97, DecayInterval: 64})

	// Two alternating phases on node (1,2): successor 3 in phase A,
	// successor 4 in phase B. Each phase runs long enough for decay to
	// prune the other phase's edge to zero.
	phase := func(z cfg.BlockID, rounds int) {
		for r := 0; r < rounds; r++ {
			feed(g, 1, 2, z, 1)
		}
	}
	for i := 0; i < 16; i++ { // reach steady state: both edges exist or recycle
		phase(3, 600)
		phase(4, 600)
	}

	allocs := testing.AllocsPerRun(20, func() {
		phase(3, 600)
		phase(4, 600)
	})
	if allocs != 0 {
		t.Errorf("phase churn allocates: %.2f allocs per phase pair, want 0 (edge free list must recycle)", allocs)
	}
}
