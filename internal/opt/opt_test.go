package opt_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/classfile"
	"repro/internal/jasm"
	"repro/internal/minijava"
	"repro/internal/opt"
	"repro/internal/vm"
	"repro/internal/workload"
)

// execProg runs a linked program and returns its output.
func execProg(t *testing.T, prog *classfile.Program) string {
	t.Helper()
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	var out bytes.Buffer
	m, err := vm.New(prog, pcfg, vm.Options{Out: &out, MaxSteps: 200_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

// disasm returns the main method's listing.
func disasm(t *testing.T, prog *classfile.Program) string {
	t.Helper()
	s, err := bytecode.Disassemble(prog.Main.Code)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConstantFoldingRewrites(t *testing.T) {
	prog, err := jasm.Assemble(`
.class Main
.native static p ( int ) void println_int
.method static main ( ) void
    iconst 6 iconst 7 imul invokestatic Main.p
    iconst 10 iconst 0 iadd invokestatic Main.p
    iconst 5 ineg invokestatic Main.p
    fconst 2.0 fconst 3.0 fmul f2i invokestatic Main.p
    return
.end
.end
.entry Main main
`)
	if err != nil {
		t.Fatal(err)
	}
	before := execProg(t, prog)

	st, changed, err := opt.Method(prog, prog.Main)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if !changed {
		t.Fatal("nothing changed")
	}
	if st.Folded == 0 {
		t.Errorf("no folds recorded: %+v", st)
	}
	after := execProg(t, prog)
	if after != before {
		t.Errorf("optimization changed output: %q vs %q", after, before)
	}
	listing := disasm(t, prog)
	if !strings.Contains(listing, "iconst 42") {
		t.Errorf("6*7 not folded:\n%s", listing)
	}
	if strings.Contains(listing, "imul") || strings.Contains(listing, "fmul") {
		t.Errorf("arithmetic survived folding:\n%s", listing)
	}
	if st.InstrsAfter >= st.InstrsBefore {
		t.Errorf("no shrink: %+v", st)
	}
}

func TestBranchFoldingAndDCE(t *testing.T) {
	prog, err := jasm.Assemble(`
.class Main
.native static p ( int ) void println_int
.method static main ( ) void
    iconst 1
    ifne takeit               ; constant-true conditional
    iconst 111 invokestatic Main.p   ; dead
takeit:
    iconst 222 invokestatic Main.p
    goto hop                  ; goto-to-goto chain
hop:
    goto end
    iconst 333 invokestatic Main.p   ; unreachable
end:
    return
.end
.end
.entry Main main
`)
	if err != nil {
		t.Fatal(err)
	}
	before := execProg(t, prog)
	if before != "222\n" {
		t.Fatalf("reference output %q", before)
	}
	st, changed, err := opt.Method(prog, prog.Main)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || st.BranchesFolded == 0 || st.DeadRemoved == 0 {
		t.Errorf("expected branch folds and DCE: %+v changed=%v", st, changed)
	}
	after := execProg(t, prog)
	if after != before {
		t.Errorf("output changed: %q vs %q", after, before)
	}
	listing := disasm(t, prog)
	if strings.Contains(listing, "iconst 111") || strings.Contains(listing, "iconst 333") {
		t.Errorf("dead code survived:\n%s", listing)
	}
}

func TestOptimizerPreservesExceptions(t *testing.T) {
	prog, err := minijava.Compile(`
class Err { int v; void init(int x) { v = x; } }
class Main {
    static int f(int i) {
        int noise = 2 * 3 + 0;   // foldable
        if (i == 7) { throw new Err(i + noise); }
        return i;
    }
    static void main() {
        int s = 0;
        for (int i = 0; i < 10; i = i + 1) {
            try { s = s + f(i); }
            catch (Err e) { s = s + e.v * 100; }
        }
        Sys.printlnInt(s);
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	before := execProg(t, prog)
	st, err := opt.Program(prog)
	if err != nil {
		t.Fatal(err)
	}
	after := execProg(t, prog)
	if after != before {
		t.Errorf("output changed: %q vs %q", after, before)
	}
	if st.MethodsChanged == 0 {
		t.Error("optimizer touched nothing")
	}
}

func TestOptimizerIdempotent(t *testing.T) {
	prog, err := minijava.Compile(`class Main { static void main() {
        Sys.printlnInt(2 * 3 + 4 * 5);
    } }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Program(prog); err != nil {
		t.Fatal(err)
	}
	code1 := append([]byte(nil), prog.Main.Code...)
	st2, err := opt.Program(prog)
	if err != nil {
		t.Fatal(err)
	}
	if st2.MethodsChanged != 0 {
		t.Errorf("second pass changed methods: %+v", st2)
	}
	if !bytes.Equal(code1, prog.Main.Code) {
		t.Error("second pass altered code")
	}
}

func TestOptimizerSkipsLeaderWindows(t *testing.T) {
	// The iadd is a branch target: control can arrive with a different
	// stack, so the [iconst; iconst; iadd] window must NOT be folded.
	prog, err := jasm.Assemble(`
.class Main
.native static p ( int ) void println_int
.method static main ( ) void
.locals 1
    iload 0 ifne other
    iconst 1
    iconst 2
merge:
    iadd invokestatic Main.p
    return
other:
    iconst 10
    iconst 20
    goto merge
.end
.end
.entry Main main
`)
	if err != nil {
		t.Fatal(err)
	}
	before := execProg(t, prog)
	if _, _, err := opt.Method(prog, prog.Main); err != nil {
		t.Fatal(err)
	}
	after := execProg(t, prog)
	if after != before {
		t.Errorf("output changed: %q vs %q", after, before)
	}
	if !strings.Contains(disasm(t, prog), "iadd") {
		t.Error("iadd at a leader was folded away")
	}
}

func TestOptimizerOnAllWorkloads(t *testing.T) {
	// Semantic preservation across the full benchmark suite: identical
	// output before and after optimization.
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog, _, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			before := execProg(t, prog)
			st, err := opt.Program(prog)
			if err != nil {
				t.Fatal(err)
			}
			after := execProg(t, prog)
			if after != before {
				t.Errorf("%s: optimization changed output", w.Name)
			}
			t.Logf("%s: %s", w.Name, st)
		})
	}
}

// TestPropertyFoldingPreservesSemantics generates random constant expression
// programs and checks output equality across optimization.
func TestPropertyFoldingPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		sb.WriteString(".class Main\n.native static p ( int ) void println_int\n.method static main ( ) void\n")
		// Random constant expression: push k constants, combine with k-1 ops.
		k := r.Intn(6) + 2
		for i := 0; i < k; i++ {
			fmt.Fprintf(&sb, "iconst %d\n", r.Intn(2001)-1000)
		}
		ops := []string{"iadd", "isub", "imul", "ior", "ixor", "iand"}
		for i := 0; i < k-1; i++ {
			sb.WriteString(ops[r.Intn(len(ops))] + "\n")
		}
		sb.WriteString("invokestatic Main.p\nreturn\n.end\n.end\n.entry Main main\n")

		prog, err := jasm.Assemble(sb.String())
		if err != nil {
			return false
		}
		before := execProg(t, prog)
		if _, err := opt.Program(prog); err != nil {
			return false
		}
		after := execProg(t, prog)
		return before == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
