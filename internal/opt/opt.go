// Package opt implements a static bytecode-to-bytecode optimizer: classic
// method-local peephole passes plus unreachable-code elimination, iterated
// to a fixpoint. It exists as the static counterpart to the dynamic
// trace-level optimization study (internal/traceopt): the paper's premise
// is that traces expose opportunities static optimization cannot see, and
// comparing the two quantifies that.
//
// Passes (all target-safe: the rewriter works on an index-based IR where
// branch targets are instruction indexes, and re-encodes with remapped
// targets and exception tables afterwards):
//
//   - constant folding: [iconst a; iconst b; op] → [iconst (a op b)], same
//     for float constants and unary negation/conversions,
//   - algebraic identities: x+0, x-0, x*1, x/1, x<<0, x|0, x^0 dropped;
//     x*0 rewritten to [pop; iconst 0],
//   - branch folding: a conditional over constants becomes a goto or falls
//     through; goto-to-goto chains are shortened; goto-to-next removed,
//   - dead code elimination: instructions unreachable from the entry and
//     every exception handler are deleted.
package opt

import (
	"fmt"
	"math"

	"repro/internal/bytecode"
	"repro/internal/classfile"
)

// Stats reports what the optimizer did.
type Stats struct {
	MethodsChanged int
	InstrsBefore   int
	InstrsAfter    int
	Folded         int // constant/algebraic rewrites
	BranchesFolded int // conditionals resolved or gotos shortened
	DeadRemoved    int // unreachable instructions deleted
}

// Saved returns the net instruction reduction.
func (s Stats) Saved() int { return s.InstrsBefore - s.InstrsAfter }

func (s Stats) String() string {
	return fmt.Sprintf("optimized %d methods: %d -> %d instrs (%d folded, %d branches, %d dead)",
		s.MethodsChanged, s.InstrsBefore, s.InstrsAfter, s.Folded, s.BranchesFolded, s.DeadRemoved)
}

// Program optimizes every bytecode method of a linked program in place and
// re-verifies each changed method.
func Program(p *classfile.Program) (Stats, error) {
	var total Stats
	for _, m := range p.Methods {
		if len(m.Code) == 0 {
			continue
		}
		st, changed, err := Method(p, m)
		if err != nil {
			return total, fmt.Errorf("opt: method %s: %w", m.QName(), err)
		}
		total.InstrsBefore += st.InstrsBefore
		total.InstrsAfter += st.InstrsAfter
		total.Folded += st.Folded
		total.BranchesFolded += st.BranchesFolded
		total.DeadRemoved += st.DeadRemoved
		if changed {
			total.MethodsChanged++
		}
	}
	return total, nil
}

// Method optimizes one method in place. It reports whether the code
// changed; on change the method has been re-verified.
func Method(p *classfile.Program, m *classfile.Method) (Stats, bool, error) {
	ir, err := decodeIR(m)
	if err != nil {
		return Stats{}, false, err
	}
	st := Stats{InstrsBefore: len(ir.ins)}

	changed := false
	for pass := 0; pass < 10; pass++ {
		any := false
		any = ir.foldConstants(&st) || any
		any = ir.foldBranches(&st) || any
		any = ir.removeDead(&st) || any
		if !any {
			break
		}
		changed = true
	}
	st.InstrsAfter = len(ir.ins)
	if !changed {
		return st, false, nil
	}

	code, handlers, err := ir.encode()
	if err != nil {
		return Stats{}, false, err
	}
	oldCode, oldHandlers := m.Code, m.Handlers
	m.Code, m.Handlers = code, handlers
	if err := p.Reverify(m); err != nil {
		// Never ship a rewrite the verifier rejects.
		m.Code, m.Handlers = oldCode, oldHandlers
		return Stats{}, false, fmt.Errorf("rewrite failed verification: %w", err)
	}
	return st, true, nil
}

// irInstr is one instruction in index-target form: branch targets (A for
// branches, Dflt/Targets for switches) hold instruction indexes, not pcs.
type irInstr struct {
	in     bytecode.Instr
	target int   // branch target index (KindBranch)
	dflt   int   // switch default index
	tgts   []int // switch target indexes
}

type ir struct {
	method   *classfile.Method
	ins      []irInstr
	handlers []irHandler
}

type irHandler struct {
	start, end, handler int // instruction indexes; end is exclusive
	classIdx            int32
}

func decodeIR(m *classfile.Method) (*ir, error) {
	decoded, err := bytecode.Decode(m.Code)
	if err != nil {
		return nil, err
	}
	byPC := make(map[uint32]int, len(decoded))
	for i, in := range decoded {
		byPC[in.PC] = i
	}
	out := &ir{method: m}
	for _, in := range decoded {
		ii := irInstr{in: in, target: -1, dflt: -1}
		switch bytecode.InfoOf(in.Op).Operand {
		case bytecode.KindBranch:
			ii.target = byPC[uint32(in.A)]
		case bytecode.KindTableSwitch, bytecode.KindLookupSwitch:
			ii.dflt = byPC[in.Dflt]
			ii.tgts = make([]int, len(in.Targets))
			for k, t := range in.Targets {
				ii.tgts[k] = byPC[t]
			}
		}
		out.ins = append(out.ins, ii)
	}
	for _, h := range m.Handlers {
		endIdx := len(decoded)
		if idx, ok := byPC[h.EndPC]; ok {
			endIdx = idx
		}
		out.handlers = append(out.handlers, irHandler{
			start:    byPC[h.StartPC],
			end:      endIdx,
			handler:  byPC[h.HandlerPC],
			classIdx: h.ClassIdx,
		})
	}
	return out, nil
}

// isLeader reports indexes that control flow can enter other than by
// falling through — branch/switch targets and handler entries. Peepholes
// only rewrite windows whose interior instructions are not leaders.
func (r *ir) leaders() []bool {
	lead := make([]bool, len(r.ins)+1)
	for _, ii := range r.ins {
		if ii.target >= 0 {
			lead[ii.target] = true
		}
		if ii.dflt >= 0 {
			lead[ii.dflt] = true
		}
		for _, t := range ii.tgts {
			lead[t] = true
		}
	}
	for _, h := range r.handlers {
		lead[h.handler] = true
	}
	return lead
}

// remove deletes instruction indexes in doomed (a set), remapping every
// branch target, switch target, and handler boundary.
func (r *ir) remove(doomed map[int]bool) {
	if len(doomed) == 0 {
		return
	}
	// newIdx[i] = index of instruction i after deletion; for deleted
	// instructions, the index of the next surviving one.
	newIdx := make([]int, len(r.ins)+1)
	n := 0
	for i := range r.ins {
		newIdx[i] = n
		if !doomed[i] {
			n++
		}
	}
	newIdx[len(r.ins)] = n

	var kept []irInstr
	for i, ii := range r.ins {
		if doomed[i] {
			continue
		}
		if ii.target >= 0 {
			ii.target = newIdx[ii.target]
		}
		if ii.dflt >= 0 {
			ii.dflt = newIdx[ii.dflt]
		}
		for k, t := range ii.tgts {
			ii.tgts[k] = newIdx[t]
		}
		kept = append(kept, ii)
	}
	r.ins = kept

	var hs []irHandler
	for _, h := range r.handlers {
		h.start = newIdx[h.start]
		h.end = newIdx[h.end]
		h.handler = newIdx[h.handler]
		if h.start < h.end && h.handler < len(r.ins) {
			hs = append(hs, h)
		}
	}
	r.handlers = hs
}

// constOf returns the constant value of an instruction, if it pushes one.
func constOf(in bytecode.Instr) (int64, float64, bool, bool) {
	switch in.Op {
	case bytecode.IConst:
		return int64(in.A), 0, true, false
	case bytecode.FConst:
		return 0, in.F, false, true
	}
	return 0, 0, false, false
}

// foldConstants applies constant and algebraic peepholes once.
func (r *ir) foldConstants(st *Stats) bool {
	lead := r.leaders()
	changed := false
	doomed := map[int]bool{}
	clean := func(idxs ...int) bool {
		for _, x := range idxs {
			if doomed[x] {
				return false
			}
		}
		return true
	}

	// Pair windows [a; op]: unary constant folding and, when a is the
	// right-operand constant of an identity, algebraic elimination (the
	// left operand is whatever sits on the stack, so it need not be
	// adjacent).
	for i := 0; i+1 < len(r.ins); i++ {
		j := i + 1
		if lead[j] || !clean(i, j) {
			continue
		}
		a, b := r.ins[i].in, r.ins[j].in
		an, af, aInt, aFlt := constOf(a)
		if !aInt && !aFlt {
			continue
		}
		switch b.Op {
		case bytecode.INeg:
			if aInt && fits32(-an) {
				r.ins[i].in = bytecode.Instr{Op: bytecode.IConst, A: int32(-an)}
				doomed[j] = true
				st.Folded++
				changed = true
			}
		case bytecode.FNeg:
			if aFlt {
				r.ins[i].in = bytecode.Instr{Op: bytecode.FConst, F: -af}
				doomed[j] = true
				st.Folded++
				changed = true
			}
		case bytecode.I2F:
			if aInt {
				r.ins[i].in = bytecode.Instr{Op: bytecode.FConst, F: float64(an)}
				doomed[j] = true
				st.Folded++
				changed = true
			}
		case bytecode.F2I:
			if aFlt && !math.IsNaN(af) && !math.IsInf(af, 0) && fits32(int64(af)) {
				r.ins[i].in = bytecode.Instr{Op: bytecode.IConst, A: int32(int64(af))}
				doomed[j] = true
				st.Folded++
				changed = true
			}
		default:
			if aInt && isIdentity(b.Op, an) {
				doomed[i], doomed[j] = true, true
				st.Folded++
				changed = true
			}
		}
	}

	// Triple windows [const; const; binop].
	for i := 0; i+2 < len(r.ins); i++ {
		j, k := i+1, i+2
		if lead[j] || lead[k] || !clean(i, j, k) {
			continue
		}
		a, b, c := r.ins[i].in, r.ins[j].in, r.ins[k].in
		an, af, aInt, aFlt := constOf(a)
		bn, bf, bInt, bFlt := constOf(b)
		if aInt && bInt {
			if v, ok := foldIntOp(c.Op, an, bn); ok && fits32(v) {
				r.ins[i].in = bytecode.Instr{Op: bytecode.IConst, A: int32(v)}
				doomed[j], doomed[k] = true, true
				st.Folded++
				changed = true
			}
		} else if aFlt && bFlt {
			if v, ok := foldFloatOp(c.Op, af, bf); ok {
				r.ins[i].in = bytecode.Instr{Op: bytecode.FConst, F: v}
				doomed[j], doomed[k] = true, true
				st.Folded++
				changed = true
			}
		}
	}
	r.remove(doomed)
	return changed
}

func fits32(v int64) bool { return v >= math.MinInt32 && v <= math.MaxInt32 }

func foldIntOp(op bytecode.Op, a, b int64) (int64, bool) {
	switch op {
	case bytecode.IAdd:
		return a + b, true
	case bytecode.ISub:
		return a - b, true
	case bytecode.IMul:
		return a * b, true
	case bytecode.IDiv:
		if b == 0 {
			return 0, false
		}
		if b == -1 {
			return -a, true // Java wrapping semantics for MinInt64 / -1
		}
		return a / b, true
	case bytecode.IRem:
		if b == 0 {
			return 0, false
		}
		if b == -1 {
			return 0, true
		}
		return a % b, true
	case bytecode.IShl:
		return a << (uint64(b) & 63), true
	case bytecode.IShr:
		return a >> (uint64(b) & 63), true
	case bytecode.IUshr:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case bytecode.IAnd:
		return a & b, true
	case bytecode.IOr:
		return a | b, true
	case bytecode.IXor:
		return a ^ b, true
	}
	return 0, false
}

func foldFloatOp(op bytecode.Op, a, b float64) (float64, bool) {
	switch op {
	case bytecode.FAdd:
		return a + b, true
	case bytecode.FSub:
		return a - b, true
	case bytecode.FMul:
		return a * b, true
	case bytecode.FDiv:
		return a / b, true
	case bytecode.FRem:
		return math.Mod(a, b), true
	}
	return 0, false
}

// isIdentity reports "x op const == x".
func isIdentity(op bytecode.Op, c int64) bool {
	switch op {
	case bytecode.IAdd, bytecode.ISub, bytecode.IOr, bytecode.IXor,
		bytecode.IShl, bytecode.IShr, bytecode.IUshr:
		return c == 0
	case bytecode.IMul, bytecode.IDiv:
		return c == 1
	}
	return false
}

// foldBranches resolves constant conditionals and shortens goto chains.
func (r *ir) foldBranches(st *Stats) bool {
	changed := false
	doomed := map[int]bool{}
	lead := r.leaders()

	for i := range r.ins {
		ii := &r.ins[i]
		op := ii.in.Op

		// goto-to-goto chaining, with a hop bound for safety.
		if op == bytecode.Goto || bytecode.InfoOf(op).Flow == bytecode.FlowCond {
			t := ii.target
			hops := 0
			for t >= 0 && t < len(r.ins) && r.ins[t].in.Op == bytecode.Goto && hops < 8 {
				nt := r.ins[t].target
				if nt == t {
					break // self-loop
				}
				t = nt
				hops++
			}
			if t != ii.target {
				ii.target = t
				st.BranchesFolded++
				changed = true
			}
		}

		// goto to the textually next instruction is a no-op (only if the
		// goto is not itself the final instruction).
		if op == bytecode.Goto && ii.target == i+1 && i+1 < len(r.ins) {
			doomed[i] = true
			st.BranchesFolded++
			changed = true
			continue
		}

		// Constant single-operand conditionals: [iconst c; ifXX] resolves
		// statically when the iconst feeds the branch (no interior leader).
		if i > 0 && !lead[i] && !doomed[i-1] {
			cn, _, isInt, _ := constOf(r.ins[i-1].in)
			if isInt && isSingleIntCond(op) {
				taken := evalSingleIntCond(op, cn)
				doomed[i-1] = true
				if taken {
					ii.in = bytecode.Instr{Op: bytecode.Goto}
					// target unchanged
				} else {
					doomed[i] = true
				}
				st.BranchesFolded++
				changed = true
			}
		}
	}
	r.remove(doomed)
	return changed
}

func isSingleIntCond(op bytecode.Op) bool {
	switch op {
	case bytecode.IfEq, bytecode.IfNe, bytecode.IfLt, bytecode.IfGe,
		bytecode.IfGt, bytecode.IfLe:
		return true
	}
	return false
}

func evalSingleIntCond(op bytecode.Op, v int64) bool {
	switch op {
	case bytecode.IfEq:
		return v == 0
	case bytecode.IfNe:
		return v != 0
	case bytecode.IfLt:
		return v < 0
	case bytecode.IfGe:
		return v >= 0
	case bytecode.IfGt:
		return v > 0
	case bytecode.IfLe:
		return v <= 0
	}
	return false
}

// removeDead deletes instructions unreachable from the entry and from every
// exception handler.
func (r *ir) removeDead(st *Stats) bool {
	reach := make([]bool, len(r.ins))
	var work []int
	push := func(i int) {
		if i >= 0 && i < len(r.ins) && !reach[i] {
			reach[i] = true
			work = append(work, i)
		}
	}
	push(0)
	for _, h := range r.handlers {
		push(h.handler)
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		ii := r.ins[i]
		switch bytecode.InfoOf(ii.in.Op).Flow {
		case bytecode.FlowNext, bytecode.FlowCall:
			push(i + 1)
		case bytecode.FlowGoto:
			push(ii.target)
		case bytecode.FlowCond:
			push(ii.target)
			push(i + 1)
		case bytecode.FlowSwitch:
			push(ii.dflt)
			for _, t := range ii.tgts {
				push(t)
			}
		case bytecode.FlowReturn, bytecode.FlowHalt, bytecode.FlowThrow:
		}
	}
	doomed := map[int]bool{}
	for i := range r.ins {
		if !reach[i] {
			doomed[i] = true
		}
	}
	// The structural validator requires the method to end in a terminator;
	// keep a trailing epilogue alive if deleting dead code would expose a
	// fallthrough end. (Deleting only unreachable code cannot do that: the
	// last reachable instruction is always terminal or followed by
	// reachable code. So full removal is safe.)
	if len(doomed) == 0 {
		return false
	}
	st.DeadRemoved += len(doomed)
	r.remove(doomed)
	return true
}

// encode re-serializes the IR, resolving instruction indexes back to pcs.
func (r *ir) encode() ([]byte, []classfile.Handler, error) {
	// First compute pcs.
	pcs := make([]uint32, len(r.ins)+1)
	pc := uint32(0)
	for i, ii := range r.ins {
		pcs[i] = pc
		pc += ii.in.Size()
	}
	pcs[len(r.ins)] = pc

	enc := bytecode.NewEncoder()
	for i, ii := range r.ins {
		in := ii.in
		in.PC = pcs[i]
		switch bytecode.InfoOf(in.Op).Operand {
		case bytecode.KindBranch:
			in.A = int32(pcs[ii.target])
		case bytecode.KindTableSwitch, bytecode.KindLookupSwitch:
			in.Dflt = pcs[ii.dflt]
			in.Targets = make([]uint32, len(ii.tgts))
			for k, t := range ii.tgts {
				in.Targets[k] = pcs[t]
			}
		}
		if _, err := enc.Emit(in); err != nil {
			return nil, nil, err
		}
	}
	var handlers []classfile.Handler
	for _, h := range r.handlers {
		handlers = append(handlers, classfile.Handler{
			StartPC:   pcs[h.start],
			EndPC:     pcs[h.end],
			HandlerPC: pcs[h.handler],
			ClassIdx:  h.classIdx,
		})
	}
	return enc.Bytes(), handlers, nil
}
