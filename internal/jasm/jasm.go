// Package jasm implements a textual assembler for the bytecode ISA. It is
// the workhorse of the test suite and of small hand-written programs; the
// MiniJava compiler is the production frontend.
//
// Syntax (line oriented; ';' and '//' start comments):
//
//	.class Point                 declare a class
//	.super Shape                 optional superclass (inside .class)
//	.field x int                 instance field (int|float|ref)
//	.field static count int      static field
//	.method static main () void  begin a method
//	.locals 4                    locals array size (default: argument count)
//	.native name (int) float math_sqrt   native method binding
//	.abstract area () float      abstract method
//	.end                         end method or class
//	.entry Main main             program entry point
//
// Method bodies contain labels ("loop:") and instructions. Operands:
//
//	iconst 42          fconst 3.14        sconst "hello"
//	iload 0            iinc 2 -1
//	goto loop          if_icmplt loop
//	tableswitch 0 defaultL a b c          (low, default label, targets)
//	lookupswitch defaultL 1:one 5:five    (default label, key:label pairs)
//	invokestatic Main.helper
//	invokevirtual Shape.area
//	getfield Point.x   putstatic Main.count
//	new Point          instanceof Shape   checkcast Shape
//	newarray int       (int|float|ref|byte)
package jasm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bytecode"
	"repro/internal/classfile"
)

// Assemble parses jasm source into a linked program.
func Assemble(src string) (*classfile.Program, error) {
	a := &asm{b: classfile.NewBuilder()}
	if err := a.run(src); err != nil {
		return nil, err
	}
	return a.b.Build()
}

// AssembleUnlinked parses jasm source but skips linking; tests use it to
// target link-time failures.
func AssembleUnlinked(src string) (*classfile.Program, error) {
	a := &asm{b: classfile.NewBuilder()}
	if err := a.run(src); err != nil {
		return nil, err
	}
	return a.b.Program(), nil
}

type asm struct {
	b *classfile.Builder

	class  *classfile.ClassBuilder
	cname  string
	method *classfile.Method

	enc     *bytecode.Encoder
	labels  map[string]uint32
	fixups  []fixup
	catches []pendingCatch
	line    int
	started bool // method has locals directive processed or code emitted
}

// pendingCatch is a .catch directive awaiting label resolution.
type pendingCatch struct {
	class            string // "*" for catch-all
	from, to, target string
	line             int
}

type fixup struct {
	pc     uint32
	label  string
	line   int
	swIdx  int // -2: plain branch; -1: switch default; >=0: switch target i
	isSwch bool
}

func (a *asm) errf(format string, args ...any) error {
	return fmt.Errorf("jasm: line %d: %s", a.line, fmt.Sprintf(format, args...))
}

func (a *asm) run(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		line := stripComment(raw)
		toks, err := tokenize(line)
		if err != nil {
			return a.errf("%v", err)
		}
		if len(toks) == 0 {
			continue
		}
		if err := a.statement(toks); err != nil {
			return err
		}
	}
	if a.method != nil {
		return a.errf("unterminated method %q", a.method.Name)
	}
	if a.class != nil {
		return a.errf("unterminated class %q", a.cname)
	}
	return nil
}

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch {
		case line[i] == '"' && (i == 0 || line[i-1] != '\\'):
			inStr = !inStr
		case !inStr && line[i] == ';':
			return line[:i]
		case !inStr && line[i] == '/' && i+1 < len(line) && line[i+1] == '/':
			return line[:i]
		}
	}
	return line
}

// tokenize splits a line into tokens, keeping quoted strings as single
// tokens (with quotes).
func tokenize(line string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(line) {
		c := line[i]
		if c == ' ' || c == '\t' || c == '\r' {
			i++
			continue
		}
		if c == '"' {
			j := i + 1
			for j < len(line) && (line[j] != '"' || line[j-1] == '\\') {
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated string literal")
			}
			toks = append(toks, line[i:j+1])
			i = j + 1
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' && line[j] != '\r' {
			j++
		}
		toks = append(toks, line[i:j])
		i = j
	}
	return toks, nil
}

func (a *asm) statement(toks []string) error {
	head := toks[0]
	switch {
	case strings.HasPrefix(head, "."):
		return a.directive(head, toks[1:])
	case strings.HasSuffix(head, ":"):
		if a.method == nil {
			return a.errf("label outside method")
		}
		name := strings.TrimSuffix(head, ":")
		if name == "" {
			return a.errf("empty label")
		}
		if _, dup := a.labels[name]; dup {
			return a.errf("duplicate label %q", name)
		}
		a.labels[name] = a.enc.PC()
		return a.instructionSeq(toks[1:])
	default:
		if a.method == nil {
			return a.errf("instruction outside method")
		}
		return a.instructionSeq(toks)
	}
}

// instructionSeq assembles one or more instructions from a token run; fixed
// operand arities make multiple instructions per line unambiguous. Switch
// instructions have variable arity and must be last on their line.
func (a *asm) instructionSeq(toks []string) error {
	for len(toks) > 0 {
		mnemonic := toks[0]
		op, ok := bytecode.OpByName(mnemonic)
		if !ok {
			return a.errf("unknown instruction %q", mnemonic)
		}
		var n int
		switch bytecode.InfoOf(op).Operand {
		case bytecode.KindNone:
			n = 0
		case bytecode.KindIInc:
			n = 2
		case bytecode.KindTableSwitch, bytecode.KindLookupSwitch:
			n = len(toks) - 1
		default:
			n = 1
		}
		if len(toks)-1 < n {
			return a.errf("%s needs %d operand(s)", mnemonic, n)
		}
		if err := a.instruction(mnemonic, toks[1:1+n]); err != nil {
			return err
		}
		toks = toks[1+n:]
	}
	return nil
}

func (a *asm) directive(name string, args []string) error {
	switch name {
	case ".class":
		if a.class != nil {
			return a.errf(".class inside class")
		}
		if len(args) != 1 {
			return a.errf(".class takes one name")
		}
		a.class = a.b.Class(args[0])
		a.cname = args[0]
		return nil
	case ".super":
		if a.class == nil || a.method != nil {
			return a.errf(".super outside class header")
		}
		if len(args) != 1 {
			return a.errf(".super takes one name")
		}
		a.class.Extends(args[0])
		return nil
	case ".field":
		if a.class == nil || a.method != nil {
			return a.errf(".field outside class")
		}
		static := false
		if len(args) > 0 && args[0] == "static" {
			static = true
			args = args[1:]
		}
		if len(args) != 2 {
			return a.errf(".field [static] name type")
		}
		t, err := parseType(args[1], false)
		if err != nil {
			return a.errf("%v", err)
		}
		if static {
			a.class.StaticField(args[0], t)
		} else {
			a.class.Field(args[0], t)
		}
		return nil
	case ".method", ".native", ".abstract":
		if a.class == nil {
			return a.errf("%s outside class", name)
		}
		if a.method != nil {
			return a.errf("%s inside method", name)
		}
		return a.beginMethod(name, args)
	case ".locals":
		if a.method == nil {
			return a.errf(".locals outside method")
		}
		if len(args) != 1 {
			return a.errf(".locals takes one count")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 {
			return a.errf("bad locals count %q", args[0])
		}
		if n > a.method.MaxLocals {
			a.method.MaxLocals = n
		}
		return nil
	case ".catch":
		// .catch <Class|*> from <label> to <label> using <label>
		if a.method == nil {
			return a.errf(".catch outside method")
		}
		if len(args) != 7 || args[1] != "from" || args[3] != "to" || args[5] != "using" {
			return a.errf(".catch Class|* from L1 to L2 using L3")
		}
		a.catches = append(a.catches, pendingCatch{
			class: args[0], from: args[2], to: args[4], target: args[6], line: a.line,
		})
		return nil
	case ".end":
		switch {
		case a.method != nil:
			return a.endMethod()
		case a.class != nil:
			a.class = nil
			a.cname = ""
			return nil
		default:
			return a.errf(".end with nothing open")
		}
	case ".entry":
		if len(args) != 2 {
			return a.errf(".entry takes class and method names")
		}
		a.b.SetEntry(args[0], args[1])
		return nil
	}
	return a.errf("unknown directive %s", name)
}

func parseType(s string, allowVoid bool) (classfile.Type, error) {
	switch s {
	case "int":
		return classfile.TInt, nil
	case "float":
		return classfile.TFloat, nil
	case "ref":
		return classfile.TRef, nil
	case "void":
		if allowVoid {
			return classfile.TVoid, nil
		}
	}
	return 0, fmt.Errorf("bad type %q", s)
}

// beginMethod parses: [static] name ( types... ) ret [nativename]
func (a *asm) beginMethod(kind string, args []string) error {
	static := false
	if len(args) > 0 && args[0] == "static" {
		static = true
		args = args[1:]
	}
	if len(args) < 3 {
		return a.errf("%s [static] name ( types ) ret", kind)
	}
	mname := args[0]
	rest := args[1:]
	if rest[0] != "(" {
		// Tolerate "(int" style by re-splitting parens.
		rest = resplitParens(rest)
		if len(rest) == 0 || rest[0] != "(" {
			return a.errf("expected ( after method name")
		}
	}
	close := -1
	for i, t := range rest {
		if t == ")" {
			close = i
			break
		}
	}
	if close < 0 {
		return a.errf("missing ) in method signature")
	}
	var params []classfile.Type
	for _, t := range rest[1:close] {
		pt, err := parseType(t, false)
		if err != nil {
			return a.errf("%v", err)
		}
		params = append(params, pt)
	}
	after := rest[close+1:]
	if len(after) < 1 {
		return a.errf("missing return type")
	}
	ret, err := parseType(after[0], true)
	if err != nil {
		return a.errf("%v", err)
	}
	after = after[1:]

	switch kind {
	case ".abstract":
		if static {
			return a.errf("abstract methods cannot be static")
		}
		if len(after) != 0 {
			return a.errf("unexpected tokens after abstract signature")
		}
		a.class.AbstractMethod(mname, params, ret)
		return nil
	case ".native":
		if len(after) != 1 {
			return a.errf(".native needs a builtin name")
		}
		a.class.NativeMethod(mname, params, ret, static, after[0])
		return nil
	}
	if len(after) != 0 {
		return a.errf("unexpected tokens after method signature")
	}
	m := a.class.Method(mname, params, ret, static)
	m.MaxLocals = m.NArgs()
	a.method = m
	a.enc = bytecode.NewEncoder()
	a.labels = make(map[string]uint32)
	a.fixups = nil
	return nil
}

// resplitParens separates '(' and ')' glued to neighbouring tokens.
func resplitParens(toks []string) []string {
	var out []string
	for _, t := range toks {
		for len(t) > 0 {
			if t[0] == '(' || t[0] == ')' {
				out = append(out, string(t[0]))
				t = t[1:]
				continue
			}
			j := strings.IndexAny(t, "()")
			if j < 0 {
				out = append(out, t)
				break
			}
			out = append(out, t[:j])
			t = t[j:]
		}
	}
	return out
}

func (a *asm) endMethod() error {
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			return fmt.Errorf("jasm: line %d: undefined label %q", f.line, f.label)
		}
		var err error
		if f.isSwch {
			err = a.enc.FixupSwitchTarget(f.pc, f.swIdx, target)
		} else {
			err = a.enc.Fixup(f.pc, target)
		}
		if err != nil {
			return fmt.Errorf("jasm: line %d: %v", f.line, err)
		}
	}
	for _, c := range a.catches {
		resolve := func(name string) (uint32, error) {
			pc, ok := a.labels[name]
			if !ok {
				return 0, fmt.Errorf("jasm: line %d: undefined label %q in .catch", c.line, name)
			}
			return pc, nil
		}
		from, err := resolve(c.from)
		if err != nil {
			return err
		}
		to, err := resolve(c.to)
		if err != nil {
			return err
		}
		target, err := resolve(c.target)
		if err != nil {
			return err
		}
		idx := int32(-1)
		if c.class != "*" {
			idx = int32(a.b.ClassIndex(c.class))
		}
		a.method.Handlers = append(a.method.Handlers, classfile.Handler{
			StartPC: from, EndPC: to, HandlerPC: target, ClassIdx: idx,
		})
	}
	a.method.Code = a.enc.Bytes()
	a.method = nil
	a.enc = nil
	a.labels = nil
	a.fixups = nil
	a.catches = nil
	return nil
}

func (a *asm) instruction(mnemonic string, args []string) error {
	op, ok := bytecode.OpByName(mnemonic)
	if !ok {
		return a.errf("unknown instruction %q", mnemonic)
	}
	in := bytecode.Instr{Op: op}
	info := bytecode.InfoOf(op)
	switch info.Operand {
	case bytecode.KindNone:
		if len(args) != 0 {
			return a.errf("%s takes no operands", mnemonic)
		}
	case bytecode.KindU16:
		return a.u16Instr(op, mnemonic, args)
	case bytecode.KindI32:
		if len(args) != 1 {
			return a.errf("%s takes one integer", mnemonic)
		}
		v, err := strconv.ParseInt(args[0], 0, 64)
		if err != nil {
			return a.errf("bad integer %q", args[0])
		}
		if v < -1<<31 || v > 1<<31-1 {
			return a.errf("constant %d out of 32-bit range (use wide constants via arithmetic)", v)
		}
		in.A = int32(v)
	case bytecode.KindF64:
		if len(args) != 1 {
			return a.errf("%s takes one float", mnemonic)
		}
		v, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return a.errf("bad float %q", args[0])
		}
		in.F = v
	case bytecode.KindBranch:
		if len(args) != 1 {
			return a.errf("%s takes one label", mnemonic)
		}
		pc, err := a.enc.Emit(in)
		if err != nil {
			return a.errf("%v", err)
		}
		a.fixups = append(a.fixups, fixup{pc: pc, label: args[0], line: a.line, swIdx: -2})
		return nil
	case bytecode.KindIInc:
		if len(args) != 2 {
			return a.errf("iinc takes slot and delta")
		}
		slot, err1 := strconv.Atoi(args[0])
		delta, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil {
			return a.errf("bad iinc operands")
		}
		in.A = int32(slot)
		in.B = int32(delta)
		a.growLocals(slot)
	case bytecode.KindElem:
		if len(args) != 1 {
			return a.errf("newarray takes an element kind")
		}
		switch args[0] {
		case "int":
			in.A = bytecode.ElemInt
		case "float":
			in.A = bytecode.ElemFloat
		case "ref":
			in.A = bytecode.ElemRef
		case "byte":
			in.A = bytecode.ElemByte
		default:
			return a.errf("bad element kind %q", args[0])
		}
	case bytecode.KindTableSwitch:
		return a.tableSwitch(args)
	case bytecode.KindLookupSwitch:
		return a.lookupSwitch(args)
	}
	if _, err := a.enc.Emit(in); err != nil {
		return a.errf("%v", err)
	}
	return nil
}

// u16Instr assembles instructions with a u16 operand: local slots, string
// constants, class names, and member references.
func (a *asm) u16Instr(op bytecode.Op, mnemonic string, args []string) error {
	in := bytecode.Instr{Op: op}
	switch op {
	case bytecode.ILoad, bytecode.IStore, bytecode.FLoad, bytecode.FStore,
		bytecode.ALoad, bytecode.AStore:
		if len(args) != 1 {
			return a.errf("%s takes a slot", mnemonic)
		}
		slot, err := strconv.Atoi(args[0])
		if err != nil || slot < 0 {
			return a.errf("bad slot %q", args[0])
		}
		in.A = int32(slot)
		a.growLocals(slot)
	case bytecode.SConst:
		if len(args) != 1 || !strings.HasPrefix(args[0], `"`) {
			return a.errf("sconst takes a string literal")
		}
		s, err := strconv.Unquote(args[0])
		if err != nil {
			return a.errf("bad string literal: %v", err)
		}
		in.A = int32(a.b.String(s))
	case bytecode.New, bytecode.InstanceOf, bytecode.CheckCast:
		if len(args) != 1 {
			return a.errf("%s takes a class name", mnemonic)
		}
		in.A = int32(a.b.ClassIndex(args[0]))
	case bytecode.InvokeStatic, bytecode.InvokeVirtual, bytecode.InvokeSpecial:
		cls, member, err := splitMember(args, mnemonic)
		if err != nil {
			return a.errf("%v", err)
		}
		kind := map[bytecode.Op]classfile.RefKind{
			bytecode.InvokeStatic:  classfile.RefStatic,
			bytecode.InvokeVirtual: classfile.RefVirtual,
			bytecode.InvokeSpecial: classfile.RefSpecial,
		}[op]
		in.A = int32(a.b.MethodRef(cls, member, kind))
	case bytecode.GetField, bytecode.PutField:
		cls, member, err := splitMember(args, mnemonic)
		if err != nil {
			return a.errf("%v", err)
		}
		in.A = int32(a.b.FieldRef(cls, member, false))
	case bytecode.GetStatic, bytecode.PutStatic:
		cls, member, err := splitMember(args, mnemonic)
		if err != nil {
			return a.errf("%v", err)
		}
		in.A = int32(a.b.FieldRef(cls, member, true))
	default:
		return a.errf("unhandled u16 instruction %s", mnemonic)
	}
	if _, err := a.enc.Emit(in); err != nil {
		return a.errf("%v", err)
	}
	return nil
}

func (a *asm) growLocals(slot int) {
	if slot+1 > a.method.MaxLocals {
		a.method.MaxLocals = slot + 1
	}
}

func splitMember(args []string, mnemonic string) (cls, member string, err error) {
	if len(args) != 1 {
		return "", "", fmt.Errorf("%s takes Class.member", mnemonic)
	}
	i := strings.LastIndex(args[0], ".")
	if i <= 0 || i == len(args[0])-1 {
		return "", "", fmt.Errorf("%s operand %q is not Class.member", mnemonic, args[0])
	}
	return args[0][:i], args[0][i+1:], nil
}

// tableSwitch: tableswitch <low> <defaultLabel> <target>...
func (a *asm) tableSwitch(args []string) error {
	if len(args) < 3 {
		return a.errf("tableswitch low default targets...")
	}
	low, err := strconv.ParseInt(args[0], 0, 32)
	if err != nil {
		return a.errf("bad tableswitch low %q", args[0])
	}
	in := bytecode.Instr{Op: bytecode.TableSwitch, A: int32(low), Targets: make([]uint32, len(args)-2)}
	pc, err := a.enc.Emit(in)
	if err != nil {
		return a.errf("%v", err)
	}
	a.fixups = append(a.fixups, fixup{pc: pc, label: args[1], line: a.line, swIdx: -1, isSwch: true})
	for i, lbl := range args[2:] {
		a.fixups = append(a.fixups, fixup{pc: pc, label: lbl, line: a.line, swIdx: i, isSwch: true})
	}
	return nil
}

// lookupSwitch: lookupswitch <defaultLabel> <key>:<label>...
func (a *asm) lookupSwitch(args []string) error {
	if len(args) < 1 {
		return a.errf("lookupswitch default key:label...")
	}
	n := len(args) - 1
	in := bytecode.Instr{Op: bytecode.LookupSwitch, Keys: make([]int32, n), Targets: make([]uint32, n)}
	labels := make([]string, n)
	for i, pair := range args[1:] {
		j := strings.Index(pair, ":")
		if j <= 0 {
			return a.errf("bad lookupswitch pair %q", pair)
		}
		k, err := strconv.ParseInt(pair[:j], 0, 32)
		if err != nil {
			return a.errf("bad lookupswitch key %q", pair[:j])
		}
		in.Keys[i] = int32(k)
		labels[i] = pair[j+1:]
	}
	pc, err := a.enc.Emit(in)
	if err != nil {
		return a.errf("%v", err)
	}
	a.fixups = append(a.fixups, fixup{pc: pc, label: args[0], line: a.line, swIdx: -1, isSwch: true})
	for i, lbl := range labels {
		a.fixups = append(a.fixups, fixup{pc: pc, label: lbl, line: a.line, swIdx: i, isSwch: true})
	}
	return nil
}
