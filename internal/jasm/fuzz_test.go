package jasm_test

import (
	"testing"

	"repro/internal/jasm"
)

// FuzzAssemble: arbitrary text must assemble or error, never panic.
func FuzzAssemble(f *testing.F) {
	f.Add(".class A\n.method static main ( ) void\nreturn\n.end\n.end\n.entry A main")
	f.Add(".class A\n.method static main ( ) void\niconst 1 pop return\n.end\n.end")
	f.Add(`.class A
.method static m ( int float ref ) int
l: iload 0 tableswitch 0 l l l
.end
.end`)
	f.Add(".catch X from a to b using c")
	f.Add("garbage ; with comment")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := jasm.Assemble(src)
		if err != nil {
			return
		}
		if prog == nil || !prog.Linked() {
			t.Fatal("Assemble returned an unlinked program without error")
		}
	})
}
