package jasm_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/jasm"
	"repro/internal/vm"
)

func exec(t *testing.T, src string) string {
	t.Helper()
	prog, err := jasm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	var out bytes.Buffer
	m, err := vm.New(prog, pcfg, vm.Options{Out: &out, MaxSteps: 1_000_000})
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

func TestAssembleMinimal(t *testing.T) {
	out := exec(t, `
.class Main
.native static p ( int ) void println_int
.method static main ( ) void
    iconst 5
    invokestatic Main.p
    return
.end
.end
.entry Main main
`)
	if out != "5\n" {
		t.Errorf("output = %q", out)
	}
}

func TestLabelsForwardAndBackward(t *testing.T) {
	out := exec(t, `
.class Main
.native static p ( int ) void println_int
.method static main ( ) void
.locals 1
    iconst 0 istore 0
    goto fwd            ; forward reference
back:
    iload 0 invokestatic Main.p
    return
fwd:
    iconst 9 istore 0
    goto back           ; backward reference
.end
.end
.entry Main main
`)
	if out != "9\n" {
		t.Errorf("output = %q", out)
	}
}

func TestCommentsAndStringEscapes(t *testing.T) {
	out := exec(t, `
.class Main
.native static ps ( ref ) void println_str   ; trailing directive comment
.method static main ( ) void
    sconst "semi ; inside // string"  // a comment
    invokestatic Main.ps
    sconst "tab\tnl\nq\"end"
    invokestatic Main.ps
    return
.end
.end
.entry Main main
`)
	want := "semi ; inside // string\ntab\tnl\nq\"end\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestMultipleInstructionsPerLine(t *testing.T) {
	out := exec(t, `
.class Main
.native static p ( int ) void println_int
.method static main ( ) void
    iconst 2 iconst 3 imul iconst 4 iadd invokestatic Main.p
    return
.end
.end
.entry Main main
`)
	if out != "10\n" {
		t.Errorf("output = %q", out)
	}
}

func TestLocalsGrowAutomatically(t *testing.T) {
	prog, err := jasm.Assemble(`
.class Main
.method static main ( ) void
    iconst 1 istore 7
    return
.end
.end
.entry Main main
`)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.ClassNamed("Main").MethodNamed("main")
	if m.MaxLocals < 8 {
		t.Errorf("MaxLocals = %d, want >= 8", m.MaxLocals)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown instruction", ".class A\n.method static main ( ) void\nbogus\n.end\n.end", "unknown instruction"},
		{"undefined label", ".class A\n.method static main ( ) void\ngoto nowhere\nreturn\n.end\n.end", "undefined label"},
		{"duplicate label", ".class A\n.method static main ( ) void\nx:\nx: return\n.end\n.end", "duplicate label"},
		{"instruction outside method", ".class A\niconst 1\n.end", "outside method"},
		{"label outside method", "x:\n", "outside method"},
		{"unterminated method", ".class A\n.method static main ( ) void\nreturn\n", "unterminated method"},
		{"unterminated class", ".class A\n", "unterminated class"},
		{"bad slot", ".class A\n.method static main ( ) void\niload -1\nreturn\n.end\n.end", "bad slot"},
		{"bad string", `.class A
.method static main ( ) void
sconst notastring
return
.end
.end`, "string literal"},
		{"bad member", ".class A\n.method static main ( ) void\ninvokestatic nodot\nreturn\n.end\n.end", "Class.member"},
		{"bad elem kind", ".class A\n.method static main ( ) void\niconst 1\nnewarray weird\npop\nreturn\n.end\n.end", "element kind"},
		{"bad type", ".class A\n.field x bogus\n.end", "bad type"},
		{"abstract static", ".class A\n.abstract static f ( ) void\n.end", "cannot be static"},
		{"unterminated string", ".class A\n.method static main ( ) void\nsconst \"oops\nreturn\n.end\n.end", "unterminated string"},
		{"double class", ".class A\n.class B\n.end\n.end", ".class inside class"},
		{"end nothing", ".end", "nothing open"},
		{"iinc arity", ".class A\n.method static main ( ) void\niinc 1\nreturn\n.end\n.end", "needs 2 operand"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := jasm.Assemble(tc.src)
			if err == nil {
				t.Fatalf("assemble succeeded, want error with %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestAssembleUnlinkedSkipsLink(t *testing.T) {
	// References an undefined class: Assemble must fail, AssembleUnlinked
	// must succeed (the error is a link-time one).
	src := `
.class A
.method static main ( ) void
    invokestatic Ghost.f
    return
.end
.end
.entry A main
`
	if _, err := jasm.Assemble(src); err == nil {
		t.Error("Assemble resolved a ghost class")
	}
	if _, err := jasm.AssembleUnlinked(src); err != nil {
		t.Errorf("AssembleUnlinked failed: %v", err)
	}
}

func TestRoundTripThroughDisassembler(t *testing.T) {
	// Assemble, disassemble every method, and confirm instruction streams
	// decode to the same mnemonics.
	prog, err := jasm.Assemble(`
.class Main
.native static p ( int ) void println_int
.method static sum ( int ) int
.locals 2
    iconst 0 istore 1
loop:
    iload 0 ifle done
    iload 1 iload 0 iadd istore 1
    iinc 0 -1
    goto loop
done:
    iload 1 ireturn
.end
.method static main ( ) void
    iconst 10 invokestatic Main.sum invokestatic Main.p
    return
.end
.end
.entry Main main
`)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.ClassNamed("Main").MethodNamed("sum")
	listing, err := bytecode.Disassemble(m.Code)
	if err != nil {
		t.Fatal(err)
	}
	for _, mn := range []string{"iconst 0", "ifle", "iinc 0 -1", "goto", "ireturn"} {
		if !strings.Contains(listing, mn) {
			t.Errorf("listing missing %q:\n%s", mn, listing)
		}
	}
}

func TestFieldsAndInheritanceDirectives(t *testing.T) {
	out := exec(t, `
.class Base
.field x int
.field static s int
.method getx ( ) int
    aload 0 getfield Base.x ireturn
.end
.end
.class Derived
.super Base
.end
.class Main
.native static p ( int ) void println_int
.method static main ( ) void
.locals 1
    new Derived astore 0
    aload 0 iconst 5 putfield Base.x
    aload 0 invokevirtual Base.getx invokestatic Main.p
    iconst 7 putstatic Base.s
    getstatic Base.s invokestatic Main.p
    return
.end
.end
.entry Main main
`)
	if out != "5\n7\n" {
		t.Errorf("output = %q", out)
	}
}

func TestCatchDirective(t *testing.T) {
	out := exec(t, `
.class Boom
.end
.class Main
.native static p ( int ) void println_int
.method static risky ( int ) int
    iload 0 ifne ok
    new Boom throw
ok:
    iload 0 ireturn
.end
.method static main ( ) void
tryStart:
    iconst 0 invokestatic Main.risky invokestatic Main.p
tryEnd:
    goto done
handler:
    pop
    iconst -1 invokestatic Main.p
done:
    iconst 9 invokestatic Main.p
    return
.catch Boom from tryStart to tryEnd using handler
.end
.end
.entry Main main
`)
	if out != "-1\n9\n" {
		t.Errorf("output = %q, want -1 then 9", out)
	}
}

func TestCatchAllDirective(t *testing.T) {
	out := exec(t, `
.class Boom
.end
.class Main
.native static p ( int ) void println_int
.method static main ( ) void
a:
    new Boom throw
b:
handler:
    pop
    iconst 5 invokestatic Main.p
    return
.catch * from a to b using handler
.end
.end
.entry Main main
`)
	if out != "5\n" {
		t.Errorf("output = %q", out)
	}
}

func TestCatchDirectiveErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"outside method", ".catch X from a to b using c", "outside method"},
		{"bad syntax", `.class A
.method static main ( ) void
.catch X a b c
return
.end
.end`, ".catch"},
		{"undefined label", `.class A
.method static main ( ) void
x: return
.catch * from x to nowhere using x
.end
.end`, "undefined label"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := jasm.Assemble(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want %q", err, tc.want)
			}
		})
	}
}
