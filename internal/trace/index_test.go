package trace

import (
	"testing"

	"repro/internal/cfg"
)

func TestIndexSetLookupDelete(t *testing.T) {
	var ix Index
	t1 := New(1, []cfg.BlockID{2, 3}, 0.97)
	t2 := New(2, []cfg.BlockID{2, 4}, 0.97)

	if got := ix.Lookup(1, 2); got != nil {
		t.Fatalf("empty index Lookup = %v, want nil", got)
	}
	if prev := ix.Set(1, 2, t1); prev != nil {
		t.Fatalf("Set on empty edge returned %v, want nil", prev)
	}
	if got := ix.Lookup(1, 2); got != t1 {
		t.Fatalf("Lookup(1,2) = %v, want t1", got)
	}
	// Different predecessor on the same entry block is a distinct edge.
	if got := ix.Lookup(9, 2); got != nil {
		t.Fatalf("Lookup(9,2) = %v, want nil", got)
	}
	ix.Set(9, 2, t2)
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}

	// Replacement returns the previous registration and does not grow Len.
	if prev := ix.Set(1, 2, t2); prev != t1 {
		t.Fatalf("replacing Set returned %v, want t1", prev)
	}
	if got := ix.Lookup(1, 2); got != t2 {
		t.Fatalf("Lookup after replace = %v, want t2", got)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len after replace = %d, want 2", ix.Len())
	}

	ix.Delete(1, 2)
	if got := ix.Lookup(1, 2); got != nil {
		t.Fatalf("Lookup after Delete = %v, want nil", got)
	}
	if got := ix.Lookup(9, 2); got != t2 {
		t.Fatalf("Delete removed the wrong edge: Lookup(9,2) = %v, want t2", got)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len after Delete = %d, want 1", ix.Len())
	}
	ix.Delete(1, 2)     // deleting a missing edge is a no-op
	ix.Delete(1, 1<<20) // as is deleting beyond the grown range
	if ix.Len() != 1 {
		t.Fatalf("Len after no-op deletes = %d, want 1", ix.Len())
	}
}

func TestIndexGrowthAndReserve(t *testing.T) {
	var ix Index
	tr := New(1, []cfg.BlockID{1000, 3}, 0.97)
	ix.Set(7, 1000, tr) // forces growth well past the initial capacity
	if got := ix.Lookup(7, 1000); got != tr {
		t.Fatalf("Lookup after growth = %v, want tr", got)
	}
	if got := ix.Lookup(7, 1_000_000); got != nil {
		t.Fatalf("Lookup beyond capacity = %v, want nil", got)
	}

	var rx Index
	rx.Reserve(512)
	rx.Set(1, 2, tr)
	rx.Reserve(8) // shrinking Reserve is a no-op
	if got := rx.Lookup(1, 2); got != tr {
		t.Fatalf("Lookup after Reserve = %v, want tr", got)
	}
}

func TestIndexRange(t *testing.T) {
	var ix Index
	t1 := New(1, []cfg.BlockID{2, 3}, 0.97)
	t2 := New(2, []cfg.BlockID{5, 6}, 0.97)
	ix.Set(1, 2, t1)
	ix.Set(9, 2, t1) // second entry edge, same trace
	ix.Set(4, 5, t2)

	seen := map[[2]cfg.BlockID]*Trace{}
	ix.Range(func(from, to cfg.BlockID, tr *Trace) bool {
		seen[[2]cfg.BlockID{from, to}] = tr
		return true
	})
	want := map[[2]cfg.BlockID]*Trace{{1, 2}: t1, {9, 2}: t1, {4, 5}: t2}
	if len(seen) != len(want) {
		t.Fatalf("Range visited %d edges, want %d", len(seen), len(want))
	}
	for k, v := range want {
		if seen[k] != v {
			t.Errorf("Range edge %v = %v, want %v", k, seen[k], v)
		}
	}

	// Early termination: the callback returning false stops the walk.
	n := 0
	ix.Range(func(cfg.BlockID, cfg.BlockID, *Trace) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("Range after false visited %d edges, want 1", n)
	}

	// Deleted edges disappear from the walk.
	ix.Delete(9, 2)
	n = 0
	ix.Range(func(cfg.BlockID, cfg.BlockID, *Trace) bool {
		n++
		return true
	})
	if n != 2 {
		t.Errorf("Range after Delete visited %d edges, want 2", n)
	}
}
