package trace_test

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/classfile"
	"repro/internal/trace"
)

// FuzzSuperinstructionFoldNeverPanics feeds arbitrary bytes as the entry
// method's code through the linker and CFG builder, walks a block sequence
// off the entry (revisits allowed — traces are paths, not simple paths), and
// lowers it under fuzzed guard proofs and claimed block-entry constants.
// Compile must never panic — constant folding included — and any Program it
// accepts must satisfy the structural invariants the dispatch engine relies
// on. Inputs the linker or CFG builder reject are skipped; everything they
// accept must be lowerable or cleanly bailed on.
func FuzzSuperinstructionFoldNeverPanics(f *testing.F) {
	enc := bytecode.NewEncoder()
	for _, in := range []bytecode.Instr{
		{Op: bytecode.IConst, A: 7},
		{Op: bytecode.IStore, A: 2},
		{Op: bytecode.ILoad, A: 2},
		{Op: bytecode.IConst, A: 1},
		{Op: bytecode.ISub},
		{Op: bytecode.IStore, A: 2},
		{Op: bytecode.ILoad, A: 2},
		{Op: bytecode.IfEq, A: 0},
		{Op: bytecode.InvokeStatic, A: 0},
		{Op: bytecode.ReturnVoid},
	} {
		if _, err := enc.Emit(in); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(enc.Bytes(), uint16(4), uint16(0xffff), uint64(0x9e3779b97f4a7c15))
	f.Add([]byte{byte(bytecode.ReturnVoid)}, uint16(1), uint16(0), uint64(0))
	f.Add([]byte{0xff, 0x01, 0x02}, uint16(3), uint16(5), uint64(42))

	f.Fuzz(func(t *testing.T, code []byte, locals uint16, guards uint16, seed uint64) {
		b := classfile.NewBuilder()
		cb := b.Class("Main")
		b.MethodRef("Main", "helper", classfile.RefStatic)
		helper := cb.Method("helper", nil, classfile.TInt, true)
		helper.MaxLocals = 1
		henc := bytecode.NewEncoder()
		henc.Emit(bytecode.Instr{Op: bytecode.IConst, A: 3})
		henc.Emit(bytecode.Instr{Op: bytecode.IReturn})
		helper.Code = henc.Bytes()

		m := cb.Method("main", nil, classfile.TVoid, true)
		m.MaxLocals = int(locals)
		m.Code = code
		b.SetEntry("Main", "main")
		prog, err := b.Build()
		if err != nil {
			t.Skip()
		}
		p, err := cfg.BuildProgram(prog)
		if err != nil {
			t.Skip()
		}
		entry := p.MethodEntry(prog.Main)
		if entry == nil {
			t.Skip()
		}

		blocks := []*cfg.Block{entry}
		cur, s := entry, seed
		for len(blocks) < 8 {
			succs := cur.StaticSuccessors()
			if len(succs) == 0 {
				break
			}
			nb := p.Block(succs[int(s%uint64(len(succs)))])
			s = s/uint64(len(succs)) + 1
			if nb == nil {
				break
			}
			blocks = append(blocks, nb)
			cur = nb
		}

		// Guard proofs and entry constants are adversarial claims, not
		// derived facts: the compiler must lower or bail on any combination
		// without inspecting their truth (soundness is the oracle's job).
		env := &trace.CompileEnv{
			Blocks:      blocks,
			Resolve:     p.Block,
			GuardProofs: make([]bool, len(blocks)),
			EntryInts:   make([][]trace.SlotConst, len(blocks)),
			EntryFloats: make([][]trace.SlotBits, len(blocks)),
		}
		for i := range blocks {
			env.GuardProofs[i] = guards&(1<<uint(i)) != 0
			env.EntryInts[i] = []trace.SlotConst{
				{Slot: int32(i) % int32(locals+1), Val: int64(seed) - int64(i)},
			}
			env.EntryFloats[i] = []trace.SlotBits{
				{Slot: int32(i+1) % int32(locals+1), Bits: seed ^ uint64(i)},
			}
		}

		cp := trace.Compile(env)
		if cp == nil {
			return
		}
		if len(cp.Segs) != len(blocks) {
			t.Fatalf("%d segments for %d blocks", len(cp.Segs), len(blocks))
		}
		var instrs int64
		proven := 0
		for i := range cp.Segs {
			seg := &cp.Segs[i]
			if seg.Block != blocks[i] {
				t.Fatalf("segment %d lost its canonical block", i)
			}
			if seg.NInstrs != int64(len(blocks[i].Instrs)) {
				t.Fatalf("segment %d counts %d instrs, block has %d",
					i, seg.NInstrs, len(blocks[i].Instrs))
			}
			instrs += seg.NInstrs
			switch seg.Term.Kind {
			case trace.TStatic:
				if seg.Term.Static == nil {
					t.Fatalf("segment %d: TStatic without target", i)
				}
			case trace.TPopStatic:
				if seg.Term.Static == nil || seg.Term.PopN < 0 {
					t.Fatalf("segment %d: bad TPopStatic %+v", i, seg.Term)
				}
			case trace.TCondI, trace.TCondII:
				if seg.Term.Taken == nil || seg.Term.Fall == nil {
					t.Fatalf("segment %d: conditional without both targets", i)
				}
			case trace.TGeneric:
			default:
				t.Fatalf("segment %d: unknown terminator kind %d", i, seg.Term.Kind)
			}
			if env.GuardProofs[i] {
				proven++
			}
		}
		if cp.TotalInstrs != instrs {
			t.Fatalf("TotalInstrs %d != segment sum %d", cp.TotalInstrs, instrs)
		}
		if cp.DroppedGuards > proven {
			t.Fatalf("dropped %d guards with only %d proven", cp.DroppedGuards, proven)
		}
	})
}
