package trace

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/cfg"
)

// Program is a trace's tier-2 form: the block sequence lowered into
// superinstruction segments. A Program is immutable after Compile and holds
// no run state, so one Program may back many traces (the compiled store
// hash-conses them per merged view) and be executed concurrently by any
// number of machines.
//
// The contract with the tier-1 path is exact state equivalence: running a
// Program advances the operand stack, locals, heap, statics, trace
// accounting, and stats.Counters precisely as the Prepared block path would
// — same trap kinds at the same PCs, same hook-edge stream — differing only
// in the new tiered-execution counters. That is what makes deopt safe: a
// guard exit mid-trace leaves the frame in exactly the state the
// interpreter would have left it in.
type Program struct {
	// Segs mirror the trace's Blocks one-to-one.
	Segs []Segment

	// TotalInstrs is the bytecode instruction count over all segments, used
	// to pre-check the step budget at trace entry: if the whole trace fits,
	// no per-block limit checks are needed.
	TotalInstrs int64

	// Compile-time accounting for inventory reports.
	FusedOps      int // bytecodes absorbed into multi-op superinstructions
	FoldedOps     int // bytecodes evaluated away at compile time
	DroppedGuards int // proven side-exit guards lowered to static jumps
}

// Segment is the compiled form of one block in the trace: a superinstruction
// sequence plus a lowered terminator.
type Segment struct {
	// Block is the resolved source block; side exits and TGeneric
	// terminators hand it back to the interpreter paths unchanged.
	Block *cfg.Block
	// NInstrs is the block's bytecode instruction count, bulk-added to
	// Counters.Instrs at segment entry exactly as stepBlock does.
	NInstrs int64
	Ops     []SOp
	Term    Term
}

// SOpKind selects a superinstruction executor.
type SOpKind uint8

const (
	// SExec runs Block.Instrs[A] through the interpreter's single-op
	// executor — the universal fallback for ops the compiler does not
	// specialize.
	SExec SOpKind = iota
	// SPushConst pushes Value{N: Val} (an int, float bit pattern, or null
	// — the machine's Value is untyped).
	SPushConst
	// SPushLocal pushes locals[A].
	SPushLocal
	// SStoreLocal pops into locals[A].
	SStoreLocal
	// SStoreConst stores Value{N: Val} to locals[A] without stack traffic:
	// a fused const+store.
	SStoreConst
	// SMove copies locals[B] to locals[A] without stack traffic: a fused
	// load+store.
	SMove
	// SIncLocal adds Val to locals[A].N (iinc).
	SIncLocal
	// SBin is a specialized arithmetic op: operand sources per Mode, result
	// stored to locals[Dst] when Dst >= 0 (a fused load+load+binop+store)
	// or pushed when Dst < 0.
	SBin
)

// Operand-source modes for SBin and TCondII, packed in Mode.
const (
	// SrcLL: a = locals[A], b = locals[B].
	SrcLL uint8 = iota
	// SrcLC: a = locals[A], b = Value{N: Val}.
	SrcLC
	// SrcCL: a = Value{N: Val}, b = locals[B].
	SrcCL
	// SrcL: unary, a = locals[A].
	SrcL
)

// SOp is one superinstruction. Operand meaning depends on Kind; PC is the
// source instruction's PC for trap attribution.
type SOp struct {
	Kind SOpKind
	Op   bytecode.Op
	Mode uint8
	A    int32
	B    int32
	// Dst is the destination local for SBin, or -1 to push.
	Dst int32
	Val int64
	PC  uint32
}

// TermKind selects a lowered terminator executor.
type TermKind uint8

const (
	// TGeneric delegates to the interpreter's terminator executor —
	// branches with unspecialized operands, switches, calls, returns,
	// halt, throw.
	TGeneric TermKind = iota
	// TStatic continues to Static with zero runtime work: gotos,
	// fallthroughs, branches decided at compile time, and proven guards
	// whose operands were fully consumed symbolically.
	TStatic
	// TPopStatic pops PopN values then continues to Static: proven guards
	// whose condition operands are runtime values the compiler could not
	// absorb.
	TPopStatic
	// TCondI is a one-operand int conditional (ifeq..ifle) whose operand
	// the compiler specialized: a = locals[A] (Mode SrcL) or Value{N: Val}
	// is never needed — a constant operand folds to TStatic.
	TCondI
	// TCondII is a two-operand int compare (if_icmp*) with sources per
	// Mode, as in SBin.
	TCondII
)

// Term is a segment's lowered terminator. Taken/Fall are the resolved branch
// targets for the conditional kinds; Static is the sole successor for
// TStatic/TPopStatic.
type Term struct {
	Kind   TermKind
	Op     bytecode.Op
	Mode   uint8
	A      int32
	B      int32
	Val    int64
	PopN   int32
	Static *cfg.Block
	Taken  *cfg.Block
	Fall   *cfg.Block
}

// Tiering is the promotion policy the dispatch engine consults: Compile is
// called once a cached trace's dispatch count crosses its tier-up threshold
// (nil means the trace cannot be compiled and is barred from retrying), and
// TierDown is notified after the engine discards a compiled form following
// a guard-exit storm. Implemented by the trace cache in internal/core.
type Tiering interface {
	Compile(t *Trace) *Program
	TierDown(t *Trace)
}

// String summarizes the program for diagnostics.
func (p *Program) String() string {
	ops := 0
	for i := range p.Segs {
		ops += len(p.Segs[i].Ops)
	}
	return fmt.Sprintf("compiled %d segs %d ops (%d instrs, fused=%d folded=%d droppedGuards=%d)",
		len(p.Segs), ops, p.TotalInstrs, p.FusedOps, p.FoldedOps, p.DroppedGuards)
}
