package trace

import (
	"math"

	"repro/internal/bytecode"
	"repro/internal/cfg"
)

// SlotConst claims a local slot holds a known integer payload at a trace
// position's block entry (the policy layer translates valueflow facts into
// these so this package stays analysis-agnostic).
type SlotConst struct {
	Slot int32
	Val  int64
}

// SlotBits claims a local slot holds a known float bit pattern at a trace
// position's block entry.
type SlotBits struct {
	Slot int32
	Bits uint64
}

// CompileEnv is everything the trace compiler consumes: the resolved block
// sequence, a resolver for branch targets outside the sequence, the guard
// proofs stamped on the trace at registration, and per-position block-entry
// constants from whole-program value flow.
type CompileEnv struct {
	// Blocks is the trace's resolved block sequence. The pointers must be
	// the canonical ProgramCFG blocks (the same ones the engine's block
	// resolver returns), because the engine compares successor pointers to
	// detect side exits.
	Blocks []*cfg.Block
	// Resolve maps a BlockID to its canonical block (nil for unknown IDs);
	// usually ProgramCFG.Block. The compiler bails when a needed target
	// does not resolve.
	Resolve func(cfg.BlockID) *cfg.Block
	// GuardProofs mirrors Trace.GuardProofs: GuardProofs[i] proves the side
	// exit after Blocks[i] dead, letting the compiler lower the guard to a
	// static jump.
	GuardProofs []bool
	// EntryInts[i] / EntryFloats[i] are the constant locals proven at
	// Blocks[i]'s entry.
	EntryInts   [][]SlotConst
	EntryFloats [][]SlotBits
}

func (env *CompileEnv) proven(i int) bool {
	return i >= 0 && i < len(env.GuardProofs) && env.GuardProofs[i]
}

// Compile lowers a trace's block sequence into a superinstruction Program,
// or returns nil when the sequence cannot be compiled (the trace then stays
// at tier 1 — bailing is always safe, compiling is the optimization).
//
// The lowering is a per-segment symbolic pass. Constant pushes and local
// loads are deferred into a symbolic top-of-stack region instead of being
// emitted; ops whose operands are fully covered by that region fuse into a
// single superinstruction (or fold away entirely when every operand is a
// compile-time constant), and anything else flushes the region and falls
// back to the interpreter's single-op executor. The region is always
// contiguous with the real stack top and always empty at segment
// boundaries, so a side exit anywhere leaves the frame in exactly the state
// the block-by-block path would have produced.
func Compile(env *CompileEnv) *Program {
	if env == nil || len(env.Blocks) == 0 {
		return nil
	}
	for _, b := range env.Blocks {
		if b == nil || len(b.Instrs) == 0 {
			return nil
		}
	}
	resolve := env.Resolve
	if resolve == nil {
		resolve = func(cfg.BlockID) *cfg.Block { return nil }
	}

	p := &Program{Segs: make([]Segment, len(env.Blocks))}
	c := &segCompiler{prog: p, known: make(map[int32]int64)}
	for i, b := range env.Blocks {
		seg := &p.Segs[i]
		seg.Block = b
		seg.NInstrs = int64(len(b.Instrs))
		p.TotalInstrs += seg.NInstrs
		c.seg = seg
		c.pend = c.pend[:0]
		c.lastBin = -1
		for _, sc := range entryInts(env.EntryInts, i) {
			c.known[sc.Slot] = sc.Val
		}
		for _, sb := range entryFloats(env.EntryFloats, i) {
			c.known[sb.Slot] = int64(sb.Bits)
		}

		n := len(b.Instrs)
		bodyEnd := n - 1
		if b.Kind == bytecode.FlowNext {
			// A block split by a following leader: the last instruction is
			// an ordinary one and the terminator is the implicit
			// fallthrough.
			bodyEnd = n
		}
		for j := 0; j < bodyEnd; j++ {
			c.instr(int32(j), b.Instrs[j])
		}
		if !c.terminator(env, resolve, i, b) {
			return nil
		}
	}
	return p
}

func entryInts(e [][]SlotConst, i int) []SlotConst {
	if i < len(e) {
		return e[i]
	}
	return nil
}

func entryFloats(e [][]SlotBits, i int) []SlotBits {
	if i < len(e) {
		return e[i]
	}
	return nil
}

// symVal is one deferred value in the symbolic top-of-stack region: either
// a constant payload (covering int, float-bits, and the null reference —
// the machine's Value is untyped) or a pending read of a local slot.
type symVal struct {
	isConst bool
	val     int64 // constant payload
	slot    int32 // local slot for deferred reads
}

type segCompiler struct {
	prog *Program
	seg  *Segment
	// pend is the symbolic region, deepest first; conceptually it sits on
	// top of the frame's real operand stack.
	pend []symVal
	// known maps local slots to constant payloads: seeded from block-entry
	// facts, updated by tracked stores, carried across same-frame segment
	// boundaries, and reset at frame changes (call/return/throw).
	known map[int32]int64
	// lastBin indexes a trailing SBin whose result is still the conceptual
	// stack top (Dst == -1, pend empty, nothing emitted since), so a
	// following store can retarget it into a fused binop+store; -1 when no
	// such op is pending.
	lastBin int
}

func (c *segCompiler) emit(op SOp) {
	c.seg.Ops = append(c.seg.Ops, op)
	if op.Kind == SBin && op.Dst < 0 {
		c.lastBin = len(c.seg.Ops) - 1
	} else {
		c.lastBin = -1
	}
}

func (c *segCompiler) push(v symVal) {
	c.pend = append(c.pend, v)
	c.lastBin = -1
}

func (c *segCompiler) materialize(v symVal) {
	if v.isConst {
		c.emit(SOp{Kind: SPushConst, Val: v.val})
	} else {
		c.emit(SOp{Kind: SPushLocal, A: v.slot})
	}
}

// flushAll materializes the whole symbolic region onto the real stack.
func (c *segCompiler) flushAll() {
	for _, v := range c.pend {
		c.materialize(v)
	}
	c.pend = c.pend[:0]
}

// flushAllBut materializes everything below the top keep entries, which
// stay symbolic (and become the new whole region).
func (c *segCompiler) flushAllBut(keep int) {
	cut := len(c.pend) - keep
	for _, v := range c.pend[:cut] {
		c.materialize(v)
	}
	c.pend = append(c.pend[:0], c.pend[cut:]...)
}

// flushLocalRefs materializes the region prefix up to (and including) the
// topmost deferred read of slot, so a following write to slot cannot be
// observed by reads deferred from before it.
func (c *segCompiler) flushLocalRefs(slot int32) {
	top := -1
	for i, v := range c.pend {
		if !v.isConst && v.slot == slot {
			top = i
		}
	}
	if top < 0 {
		return
	}
	c.flushAllBut(len(c.pend) - top - 1)
}

func (c *segCompiler) instr(idx int32, in bytecode.Instr) {
	switch in.Op {
	case bytecode.Nop:
		c.prog.FoldedOps++

	case bytecode.IConst:
		c.push(symVal{isConst: true, val: int64(in.A)})
	case bytecode.FConst:
		c.push(symVal{isConst: true, val: int64(math.Float64bits(in.F))})
	case bytecode.AConstNull:
		c.push(symVal{isConst: true, val: 0})

	case bytecode.ILoad, bytecode.FLoad, bytecode.ALoad:
		if v, ok := c.known[in.A]; ok {
			c.push(symVal{isConst: true, val: v})
		} else {
			c.push(symVal{slot: in.A})
		}

	case bytecode.IStore, bytecode.FStore, bytecode.AStore:
		c.store(in.A)

	case bytecode.IInc:
		c.flushLocalRefs(in.A)
		c.emit(SOp{Kind: SIncLocal, A: in.A, Val: int64(in.B)})
		if v, ok := c.known[in.A]; ok {
			c.known[in.A] = v + int64(in.B)
		}

	case bytecode.Pop:
		if n := len(c.pend); n > 0 {
			c.pend = c.pend[:n-1]
			c.prog.FoldedOps++
		} else {
			c.emit(SOp{Kind: SExec, A: idx, PC: in.PC})
		}
	case bytecode.Dup:
		if n := len(c.pend); n > 0 {
			c.push(c.pend[n-1])
			c.prog.FoldedOps++
		} else {
			c.emit(SOp{Kind: SExec, A: idx, PC: in.PC})
		}
	case bytecode.DupX1:
		if n := len(c.pend); n >= 2 {
			a, b := c.pend[n-2], c.pend[n-1]
			c.pend[n-2], c.pend[n-1] = b, a
			c.push(b)
			c.prog.FoldedOps++
		} else {
			c.flushAll()
			c.emit(SOp{Kind: SExec, A: idx, PC: in.PC})
		}
	case bytecode.Swap:
		if n := len(c.pend); n >= 2 {
			c.pend[n-2], c.pend[n-1] = c.pend[n-1], c.pend[n-2]
			c.lastBin = -1
		} else {
			c.flushAll()
			c.emit(SOp{Kind: SExec, A: idx, PC: in.PC})
		}

	case bytecode.INeg, bytecode.FNeg, bytecode.I2F, bytecode.F2I:
		n := len(c.pend)
		if n == 0 {
			c.emit(SOp{Kind: SExec, A: idx, PC: in.PC})
			return
		}
		if v := c.pend[n-1]; v.isConst {
			c.pend[n-1] = symVal{isConst: true, val: foldUnary(in.Op, v.val)}
			c.lastBin = -1
			c.prog.FoldedOps++
			return
		}
		c.flushAllBut(1)
		v := c.pend[0]
		c.pend = c.pend[:0]
		c.emit(SOp{Kind: SBin, Op: in.Op, Mode: SrcL, A: v.slot, Dst: -1, PC: in.PC})
		c.prog.FusedOps++

	case bytecode.IAdd, bytecode.ISub, bytecode.IMul, bytecode.IDiv, bytecode.IRem,
		bytecode.IShl, bytecode.IShr, bytecode.IUshr,
		bytecode.IAnd, bytecode.IOr, bytecode.IXor,
		bytecode.FAdd, bytecode.FSub, bytecode.FMul, bytecode.FDiv, bytecode.FRem,
		bytecode.FCmpL, bytecode.FCmpG:
		n := len(c.pend)
		if n < 2 {
			c.flushAll()
			c.emit(SOp{Kind: SExec, A: idx, PC: in.PC})
			return
		}
		a, b := c.pend[n-2], c.pend[n-1]
		if a.isConst && b.isConst {
			if r, ok := foldBinary(in.Op, a.val, b.val); ok {
				c.pend = c.pend[:n-1]
				c.pend[n-2] = symVal{isConst: true, val: r}
				c.lastBin = -1
				c.prog.FoldedOps++
				return
			}
			// Division by a constant zero: keep the op live so the runtime
			// trap fires with the interpreter's exact message and PC.
			c.flushAll()
			c.emit(SOp{Kind: SExec, A: idx, PC: in.PC})
			return
		}
		c.flushAllBut(2)
		a, b = c.pend[0], c.pend[1]
		c.pend = c.pend[:0]
		op := SOp{Kind: SBin, Op: in.Op, Dst: -1, PC: in.PC}
		switch {
		case !a.isConst && !b.isConst:
			op.Mode, op.A, op.B = SrcLL, a.slot, b.slot
		case !a.isConst:
			op.Mode, op.A, op.Val = SrcLC, a.slot, b.val
		default:
			op.Mode, op.B, op.Val = SrcCL, b.slot, a.val
		}
		c.emit(op)
		c.prog.FusedOps += 2

	default:
		// Allocating ops, field and array access, checks: the region must
		// be real before the interpreter op runs.
		c.flushAll()
		c.emit(SOp{Kind: SExec, A: idx, PC: in.PC})
	}
}

// store lowers istore/fstore/astore of slot.
func (c *segCompiler) store(slot int32) {
	if n := len(c.pend); n > 0 {
		v := c.pend[n-1]
		c.pend = c.pend[:n-1]
		c.flushLocalRefs(slot)
		if v.isConst {
			c.emit(SOp{Kind: SStoreConst, A: slot, Val: v.val})
			c.known[slot] = v.val
		} else {
			c.emit(SOp{Kind: SMove, A: slot, B: v.slot})
			if kv, ok := c.known[v.slot]; ok {
				c.known[slot] = kv
			} else {
				delete(c.known, slot)
			}
		}
		c.prog.FusedOps++
		return
	}
	if c.lastBin >= 0 {
		// binop+store fusion: the preceding SBin's result is the conceptual
		// stack top; store it directly instead of push-then-pop.
		c.seg.Ops[c.lastBin].Dst = slot
		c.lastBin = -1
		delete(c.known, slot)
		c.prog.FusedOps++
		return
	}
	c.emit(SOp{Kind: SStoreLocal, A: slot})
	delete(c.known, slot)
}

// terminator lowers the segment's control transfer. It reports false when
// the compilation must bail.
func (c *segCompiler) terminator(env *CompileEnv, resolve func(cfg.BlockID) *cfg.Block, i int, b *cfg.Block) bool {
	term := b.Terminator()
	switch b.Kind {
	case bytecode.FlowNext:
		c.flushAll()
		succ := resolve(b.FallThrough)
		if succ == nil {
			return false
		}
		c.seg.Term = Term{Kind: TStatic, Static: succ}
		return true

	case bytecode.FlowGoto:
		c.flushAll()
		succ := resolve(b.Taken)
		if succ == nil {
			return false
		}
		c.seg.Term = Term{Kind: TStatic, Static: succ}
		return true

	case bytecode.FlowCond:
		arity := bytecode.CondArity(term.Op)
		if env.proven(i) && i+1 < len(env.Blocks) {
			// The guard is proven dead: the branch must go to the recorded
			// successor, so only discard the condition operands.
			consumed := arity
			if consumed > len(c.pend) {
				consumed = len(c.pend)
			}
			c.pend = c.pend[:len(c.pend)-consumed]
			c.lastBin = -1
			c.flushAll()
			c.prog.DroppedGuards++
			t := Term{Kind: TPopStatic, PopN: int32(arity - consumed), Static: env.Blocks[i+1]}
			if t.PopN == 0 {
				t.Kind = TStatic
			}
			c.seg.Term = t
			return true
		}
		return c.condTerm(resolve, b, term, arity)

	case bytecode.FlowSwitch:
		if n := len(c.pend); n > 0 && c.pend[n-1].isConst {
			key := c.pend[n-1].val
			c.pend = c.pend[:n-1]
			c.lastBin = -1
			c.flushAll()
			id, ok := switchTarget(b, term, key)
			if !ok {
				return false
			}
			succ := resolve(id)
			if succ == nil {
				return false
			}
			c.prog.FoldedOps++
			c.seg.Term = Term{Kind: TStatic, Static: succ}
			return true
		}
		c.flushAll()
		if env.proven(i) && i+1 < len(env.Blocks) {
			c.prog.DroppedGuards++
			c.seg.Term = Term{Kind: TPopStatic, PopN: 1, Static: env.Blocks[i+1]}
			return true
		}
		c.seg.Term = Term{Kind: TGeneric}
		return true

	case bytecode.FlowCall, bytecode.FlowReturn, bytecode.FlowThrow:
		c.flushAll()
		c.seg.Term = Term{Kind: TGeneric}
		// The next segment runs in a different frame (callee, caller, or
		// handler): its locals are unrelated to this one's.
		clear(c.known)
		return true

	case bytecode.FlowHalt:
		c.flushAll()
		c.seg.Term = Term{Kind: TGeneric}
		return true
	}
	return false
}

// condTerm lowers an unproven conditional: fold it when every operand is a
// compile-time constant, specialize it when the operands are covered
// int-typed symbolic values, and delegate otherwise.
func (c *segCompiler) condTerm(resolve func(cfg.BlockID) *cfg.Block, b *cfg.Block, term bytecode.Instr, arity int) bool {
	switch term.Op {
	case bytecode.IfEq, bytecode.IfNe, bytecode.IfLt, bytecode.IfGe, bytecode.IfGt, bytecode.IfLe:
		if n := len(c.pend); n >= 1 {
			v := c.pend[n-1]
			c.pend = c.pend[:n-1]
			c.lastBin = -1
			c.flushAll()
			if v.isConst {
				return c.staticCond(resolve, b, EvalCond1(term.Op, v.val))
			}
			taken, fall := resolve(b.Taken), resolve(b.FallThrough)
			if taken == nil || fall == nil {
				return false
			}
			c.seg.Term = Term{Kind: TCondI, Op: term.Op, A: v.slot, Taken: taken, Fall: fall}
			c.prog.FusedOps++
			return true
		}

	case bytecode.IfICmpEq, bytecode.IfICmpNe, bytecode.IfICmpLt,
		bytecode.IfICmpGe, bytecode.IfICmpGt, bytecode.IfICmpLe:
		if n := len(c.pend); n >= 2 {
			a, bv := c.pend[n-2], c.pend[n-1]
			if a.isConst && bv.isConst {
				c.pend = c.pend[:n-2]
				c.lastBin = -1
				c.flushAll()
				return c.staticCond(resolve, b, EvalCond2(term.Op, a.val, bv.val))
			}
			c.flushAllBut(2)
			a, bv = c.pend[0], c.pend[1]
			c.pend = c.pend[:0]
			taken, fall := resolve(b.Taken), resolve(b.FallThrough)
			if taken == nil || fall == nil {
				return false
			}
			t := Term{Kind: TCondII, Op: term.Op, Taken: taken, Fall: fall}
			switch {
			case !a.isConst && !bv.isConst:
				t.Mode, t.A, t.B = SrcLL, a.slot, bv.slot
			case !a.isConst:
				t.Mode, t.A, t.Val = SrcLC, a.slot, bv.val
			default:
				t.Mode, t.B, t.Val = SrcCL, bv.slot, a.val
			}
			c.seg.Term = t
			c.prog.FusedOps += 2
			return true
		}
	}
	// Reference conditionals or uncovered operands: the interpreter's
	// terminator executor pops from the real stack.
	_ = arity
	c.flushAll()
	c.seg.Term = Term{Kind: TGeneric}
	return true
}

func (c *segCompiler) staticCond(resolve func(cfg.BlockID) *cfg.Block, b *cfg.Block, taken bool) bool {
	id := b.FallThrough
	if taken {
		id = b.Taken
	}
	succ := resolve(id)
	if succ == nil {
		return false
	}
	c.prog.FoldedOps++
	c.seg.Term = Term{Kind: TStatic, Static: succ}
	return true
}

// switchTarget computes a switch's successor for a constant key, mirroring
// the interpreter's table/lookup dispatch. ok is false when the block's
// target table is malformed (the compiler bails rather than guessing).
func switchTarget(b *cfg.Block, term bytecode.Instr, key int64) (cfg.BlockID, bool) {
	switch term.Op {
	case bytecode.TableSwitch:
		idx := key - int64(term.A)
		if idx >= 0 && idx < int64(len(b.SwitchTargets)) {
			return b.SwitchTargets[idx], true
		}
		return b.SwitchDefault, true
	case bytecode.LookupSwitch:
		if len(term.Keys) > len(b.SwitchTargets) {
			return 0, false
		}
		for i, k := range term.Keys {
			if int64(k) == key {
				return b.SwitchTargets[i], true
			}
		}
		return b.SwitchDefault, true
	}
	return 0, false
}

// EvalCond1 mirrors the interpreter's one-operand int conditionals
// (ifeq..ifle against zero); shared by the compiler's constant folding and
// the engine's specialized terminators.
func EvalCond1(op bytecode.Op, v int64) bool {
	switch op {
	case bytecode.IfEq:
		return v == 0
	case bytecode.IfNe:
		return v != 0
	case bytecode.IfLt:
		return v < 0
	case bytecode.IfGe:
		return v >= 0
	case bytecode.IfGt:
		return v > 0
	default: // IfLe
		return v <= 0
	}
}

// EvalCond2 mirrors the interpreter's two-operand int compares
// (if_icmp*); shared by the compiler's constant folding and the engine's
// specialized terminators.
func EvalCond2(op bytecode.Op, a, b int64) bool {
	switch op {
	case bytecode.IfICmpEq:
		return a == b
	case bytecode.IfICmpNe:
		return a != b
	case bytecode.IfICmpLt:
		return a < b
	case bytecode.IfICmpGe:
		return a >= b
	case bytecode.IfICmpGt:
		return a > b
	default: // IfICmpLe
		return a <= b
	}
}

// foldUnary evaluates a pure unary op on a constant payload, bit-for-bit as
// the interpreter would.
func foldUnary(op bytecode.Op, v int64) int64 {
	switch op {
	case bytecode.INeg:
		return -v
	case bytecode.FNeg:
		return int64(math.Float64bits(-math.Float64frombits(uint64(v))))
	case bytecode.I2F:
		return int64(math.Float64bits(float64(v)))
	default: // F2I
		return int64(math.Float64frombits(uint64(v)))
	}
}

// foldBinary evaluates a pure binary op on constant payloads, bit-for-bit
// as the interpreter would. ok is false only for division by a constant
// zero, which must stay live to trap at runtime.
func foldBinary(op bytecode.Op, a, b int64) (int64, bool) {
	switch op {
	case bytecode.IAdd:
		return a + b, true
	case bytecode.ISub:
		return a - b, true
	case bytecode.IMul:
		return a * b, true
	case bytecode.IDiv:
		if b == 0 {
			return 0, false
		}
		if b == -1 {
			return -a, true
		}
		return a / b, true
	case bytecode.IRem:
		if b == 0 {
			return 0, false
		}
		if b == -1 {
			return 0, true
		}
		return a % b, true
	case bytecode.IShl:
		return a << (uint64(b) & 63), true
	case bytecode.IShr:
		return a >> (uint64(b) & 63), true
	case bytecode.IUshr:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case bytecode.IAnd:
		return a & b, true
	case bytecode.IOr:
		return a | b, true
	case bytecode.IXor:
		return a ^ b, true
	case bytecode.FAdd:
		return fbits(ffrom(a) + ffrom(b)), true
	case bytecode.FSub:
		return fbits(ffrom(a) - ffrom(b)), true
	case bytecode.FMul:
		return fbits(ffrom(a) * ffrom(b)), true
	case bytecode.FDiv:
		return fbits(ffrom(a) / ffrom(b)), true
	case bytecode.FRem:
		return fbits(math.Mod(ffrom(a), ffrom(b))), true
	case bytecode.FCmpL, bytecode.FCmpG:
		x, y := ffrom(a), ffrom(b)
		switch {
		case x < y:
			return -1, true
		case x > y:
			return 1, true
		case x == y:
			return 0, true
		default: // NaN involved
			if op == bytecode.FCmpL {
				return -1, true
			}
			return 1, true
		}
	}
	return 0, false
}

func ffrom(v int64) float64 { return math.Float64frombits(uint64(v)) }
func fbits(f float64) int64 { return int64(math.Float64bits(f)) }
