// Package trace defines the runtime representation of a trace: a sequence
// of basic blocks expected to execute back-to-back, dispatched as a single
// unit. The trace-construction algorithm lives in internal/core; this
// package holds only the representation and the accounting the dispatch
// engine records per trace, so that the VM and the trace cache can share it
// without an import cycle.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/cfg"
)

// Trace is a dispatchable block sequence. The entry block is Blocks[0];
// execution is guarded, so after each block the engine compares the actual
// successor with the next recorded block and side-exits on mismatch.
type Trace struct {
	ID     int
	Blocks []cfg.BlockID

	// ExpectedCompletion is the completion probability the constructor
	// estimated from branch correlations when the trace was cut.
	ExpectedCompletion float64

	// Accounting, maintained by the dispatch engine.
	Entered   int64
	Completed int64
	SideExits []int64 // per inter-block position: exits after Blocks[i]

	// Retired marks traces that have been replaced; the cache unregisters
	// them, so the engine never dispatches a retired trace.
	Retired bool

	// Prepared is the engine-resolved block sequence, filled lazily on the
	// trace's first execution so subsequent runs skip the per-block ID
	// resolution. Valid only for the ProgramCFG the trace was built against
	// (a trace never outlives its session).
	Prepared []*cfg.Block

	// GuardProofs marks side-exit guards proven dead by static value-flow
	// analysis: GuardProofs[i] claims SideExits[i] can never fire, so a
	// specializer may drop the guard after Blocks[i]. Nil when no oracle
	// was attached; otherwise len(Blocks)-1, set once at registration and
	// immutable afterwards.
	GuardProofs []bool

	// Tier-2 state. Compiled is the superinstruction form the engine
	// dispatches when non-nil; the Program itself is immutable and may be
	// shared across traces (and, under sharded profiling, across shards of
	// the same merged view), while the fields below are per-trace and
	// mutated only by the single goroutine running the trace.

	// Compiled is the trace's tier-2 form, set by the tiering policy once
	// Entered reaches TierUpAt and cleared again on tier-down.
	Compiled *Program
	// TierUpAt is the dispatch count at which the engine asks the tiering
	// policy to compile the trace; 0 disables promotion.
	TierUpAt int64
	// TierDownAt is the compiled-guard-exit count at which the engine
	// discards the compiled form (the trace itself survives at tier 1);
	// 0 disables demotion.
	TierDownAt int64
	// CompiledEntered counts dispatches that entered the compiled form.
	CompiledEntered int64
	// CompiledGuardExits counts side exits taken from the compiled form.
	CompiledGuardExits int64
	// CompileBarred pins the trace at tier 1: set when compilation bailed
	// or after a tier-down, so a guard-exit storm cannot flap the trace
	// between tiers. A rebuilt trace is a fresh object and gets a fresh
	// chance.
	CompileBarred bool
}

// Tier reports the trace's current execution tier: 2 when a compiled form
// is installed, 1 otherwise.
func (t *Trace) Tier() int {
	if t.Compiled != nil {
		return 2
	}
	return 1
}

// ProvenGuards counts the side-exit guards proven dead.
func (t *Trace) ProvenGuards() int {
	n := 0
	for _, p := range t.GuardProofs {
		if p {
			n++
		}
	}
	return n
}

// GuardProven reports whether the side-exit guard after Blocks[i] is proven
// dead.
func (t *Trace) GuardProven(i int) bool {
	return i >= 0 && i < len(t.GuardProofs) && t.GuardProofs[i]
}

// New creates a trace over the given block sequence.
func New(id int, blocks []cfg.BlockID, expectedCompletion float64) *Trace {
	return &Trace{
		ID:                 id,
		Blocks:             blocks,
		ExpectedCompletion: expectedCompletion,
		SideExits:          make([]int64, len(blocks)),
	}
}

// Entry returns the trace's entry block.
func (t *Trace) Entry() cfg.BlockID { return t.Blocks[0] }

// Len returns the trace length in blocks.
func (t *Trace) Len() int { return len(t.Blocks) }

// CompletionRate returns the observed completion rate so far (0 if never
// entered).
func (t *Trace) CompletionRate() float64 {
	if t.Entered == 0 {
		return 0
	}
	return float64(t.Completed) / float64(t.Entered)
}

// Key returns a canonical string key for hash-consing block sequences.
func Key(blocks []cfg.BlockID) string {
	var b strings.Builder
	for i, id := range blocks {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}

// String renders the trace for diagnostics.
func (t *Trace) String() string {
	return fmt.Sprintf("trace %d len=%d p=%.3f entered=%d completed=%d [%s]",
		t.ID, t.Len(), t.ExpectedCompletion, t.Entered, t.Completed, Key(t.Blocks))
}

// Source is what the dispatch engine consults at every dispatch edge: the
// trace registered on the edge from→to (to is the trace's entry block), or
// nil. Traces are edge-keyed because in a threaded interpreter the dispatch
// site lives at the end of the predecessor block — patching it links exactly
// one (from, to) pair to a trace — and because the branch correlation that
// justifies the trace is conditioned on the arrival edge. Implemented by
// the trace cache in internal/core and by the baseline selectors.
type Source interface {
	Lookup(from, to cfg.BlockID) *Trace
}

// EdgeKey packs a dispatch edge into a map key.
func EdgeKey(from, to cfg.BlockID) uint64 { return uint64(from)<<32 | uint64(to) }

// MapSource is a trivial Source backed by an edge-keyed map, used by tests
// and by baseline selectors that do not need invalidation machinery.
type MapSource map[uint64]*Trace

// Lookup implements Source.
func (m MapSource) Lookup(from, to cfg.BlockID) *Trace { return m[EdgeKey(from, to)] }

// Register binds a trace to an entry edge.
func (m MapSource) Register(from, to cfg.BlockID, t *Trace) { m[EdgeKey(from, to)] = t }
