package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/cfg"
)

func TestTraceBasics(t *testing.T) {
	tr := New(7, []cfg.BlockID{3, 4, 5}, 0.98)
	if tr.ID != 7 || tr.Len() != 3 || tr.Entry() != 3 {
		t.Errorf("basics wrong: %+v", tr)
	}
	if tr.ExpectedCompletion != 0.98 {
		t.Error("expected completion not stored")
	}
	if len(tr.SideExits) != 3 {
		t.Errorf("side exit slots = %d, want 3", len(tr.SideExits))
	}
	if tr.CompletionRate() != 0 {
		t.Error("completion rate of unentered trace should be 0")
	}
	tr.Entered = 10
	tr.Completed = 9
	if tr.CompletionRate() != 0.9 {
		t.Errorf("completion rate = %v", tr.CompletionRate())
	}
	if tr.String() == "" {
		t.Error("empty String()")
	}
}

func TestKeyCanonical(t *testing.T) {
	a := Key([]cfg.BlockID{1, 2, 3})
	b := Key([]cfg.BlockID{1, 2, 3})
	c := Key([]cfg.BlockID{1, 23})
	d := Key([]cfg.BlockID{12, 3})
	if a != b {
		t.Error("identical sequences produced different keys")
	}
	if c == d {
		t.Error("key collision between [1,23] and [12,3]")
	}
}

// TestPropertyKeyInjective: distinct sequences yield distinct keys.
func TestPropertyKeyInjective(t *testing.T) {
	f := func(a, b []uint32) bool {
		xa := make([]cfg.BlockID, len(a))
		for i, v := range a {
			xa[i] = cfg.BlockID(v)
		}
		xb := make([]cfg.BlockID, len(b))
		for i, v := range b {
			xb[i] = cfg.BlockID(v)
		}
		same := len(xa) == len(xb)
		if same {
			for i := range xa {
				if xa[i] != xb[i] {
					same = false
					break
				}
			}
		}
		return (Key(xa) == Key(xb)) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEdgeKey(t *testing.T) {
	if EdgeKey(1, 2) == EdgeKey(2, 1) {
		t.Error("EdgeKey symmetric")
	}
	if EdgeKey(0, 5) != 5 {
		t.Errorf("EdgeKey(0,5) = %d", EdgeKey(0, 5))
	}
}

func TestMapSource(t *testing.T) {
	m := MapSource{}
	tr := New(0, []cfg.BlockID{9, 10}, 1)
	m.Register(3, 9, tr)
	if m.Lookup(3, 9) != tr {
		t.Error("lookup missed registered edge")
	}
	if m.Lookup(9, 3) != nil || m.Lookup(4, 9) != nil {
		t.Error("lookup hit a foreign edge")
	}
}
