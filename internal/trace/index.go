package trace

import "repro/internal/cfg"

// Index is a dense edge-keyed trace registry: the dispatch engine's
// per-dispatch Lookup is a bounds check plus one slice indexing on the
// destination block ID, and — because the overwhelmingly common case is "no
// trace registered here" — usually ends after touching a single cache line.
// Entries are bucketed by the trace's entry block (the "to" side of the
// dispatch edge); a bucket holds the handful of predecessor-qualified
// registrations for that entry block, scanned linearly.
//
// Registration and removal are management-time operations (the trace cache
// rebuilds rarely, §4.2); only Lookup is dispatch-hot.
type Index struct {
	byTo [][]indexEntry
	n    int

	// loopHdr[id] marks block id as a statically detected loop header (a
	// dominating branch target of a CFG back edge). The trace constructor
	// treats branch contexts entering such a block as backtracking roots,
	// aligning trace entries with loop boundaries. Purely advisory: empty
	// unless static hints were computed and attached.
	loopHdr []bool
}

type indexEntry struct {
	from cfg.BlockID
	t    *Trace
}

// Lookup returns the trace registered on the dispatch edge from→to, or nil.
//
//tracevm:hotpath
func (ix *Index) Lookup(from, to cfg.BlockID) *Trace {
	if int(to) >= len(ix.byTo) {
		return nil
	}
	for _, e := range ix.byTo[to] {
		if e.from == from {
			return e.t
		}
	}
	return nil
}

// Set registers t on the edge from→to and returns the trace previously
// registered there, if any.
func (ix *Index) Set(from, to cfg.BlockID, t *Trace) *Trace {
	if int(to) >= len(ix.byTo) {
		grown := make([][]indexEntry, growTo(int(to)+1))
		copy(grown, ix.byTo)
		ix.byTo = grown
	}
	bucket := ix.byTo[to]
	for i, e := range bucket {
		if e.from == from {
			bucket[i].t = t
			return e.t
		}
	}
	ix.byTo[to] = append(bucket, indexEntry{from: from, t: t})
	ix.n++
	return nil
}

// Delete removes the registration on the edge from→to, if present.
func (ix *Index) Delete(from, to cfg.BlockID) {
	if int(to) >= len(ix.byTo) {
		return
	}
	bucket := ix.byTo[to]
	for i, e := range bucket {
		if e.from == from {
			bucket[i] = bucket[len(bucket)-1]
			ix.byTo[to] = bucket[:len(bucket)-1]
			ix.n--
			return
		}
	}
}

// Len returns the number of registered entry edges.
func (ix *Index) Len() int { return ix.n }

// Range calls fn for every registered entry edge until fn returns false.
// Iteration order is unspecified; the invariant checker uses it to verify
// index/cache agreement.
func (ix *Index) Range(fn func(from, to cfg.BlockID, t *Trace) bool) {
	for to, bucket := range ix.byTo {
		for _, e := range bucket {
			if !fn(e.from, cfg.BlockID(to), e.t) {
				return
			}
		}
	}
}

// SetLoopHeaders marks blocks as statically detected loop headers. Hints
// accumulate across calls; cfg.NoBlock entries are ignored.
func (ix *Index) SetLoopHeaders(ids []cfg.BlockID) {
	for _, id := range ids {
		if id == cfg.NoBlock {
			continue
		}
		if int(id) >= len(ix.loopHdr) {
			grown := make([]bool, growTo(int(id)+1))
			copy(grown, ix.loopHdr)
			ix.loopHdr = grown
		}
		ix.loopHdr[id] = true
	}
}

// LoopHeader reports whether block id was marked as a loop header.
func (ix *Index) LoopHeader(id cfg.BlockID) bool {
	return id != cfg.NoBlock && int(id) < len(ix.loopHdr) && ix.loopHdr[id]
}

// LoopHeaders returns the marked loop-header blocks in ascending order — the
// inverse of SetLoopHeaders, used when exporting a session's learned state
// so a warm-started session anchors backtracking at the same blocks.
func (ix *Index) LoopHeaders() []cfg.BlockID {
	var out []cfg.BlockID
	for id, hdr := range ix.loopHdr {
		if hdr {
			out = append(out, cfg.BlockID(id))
		}
	}
	return out
}

// Reserve pre-sizes the index for a program with numBlocks global block IDs.
func (ix *Index) Reserve(numBlocks int) {
	if numBlocks > len(ix.byTo) {
		grown := make([][]indexEntry, numBlocks)
		copy(grown, ix.byTo)
		ix.byTo = grown
	}
}

func growTo(n int) int {
	c := 64
	for c < n {
		c <<= 1
	}
	return c
}

// IndexedSource is implemented by trace sources whose lookups are backed by
// a dense Index. The dispatch engine detects it at construction and calls
// the concrete index directly, removing the per-dispatch interface call.
type IndexedSource interface {
	Source
	Index() *Index
}
