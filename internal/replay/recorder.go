package replay

import (
	"fmt"
	"sync"
	"time"
)

// Recorder accumulates a traffic log from a live request stream. It is safe
// for concurrent use: submissions from any number of clients append in
// arrival order, each stamped with the time elapsed since the previous
// arrival. Recording happens at submission time, off the dispatch hot path,
// and costs one short mutex section per request.
type Recorder struct {
	mu   sync.Mutex
	recs []Record
	last time.Time

	// now substitutes the clock in tests; nil means time.Now.
	now func() time.Time
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// SetClock substitutes the arrival-time source (tests only). Not safe to
// call concurrently with Record.
func (r *Recorder) SetClock(now func() time.Time) { r.now = now }

// Record appends one request, stamping its arrival delta. Malformed records
// are refused (a log that cannot replay must never be written); the caller
// decides whether that is worth reporting. A nil recorder drops the record,
// so the serving layer needs no guard around an optional tap. It runs on
// the serving layer's per-request path, so it must not allocate beyond the
// amortized log append.
//
//tracevm:hotpath
func (r *Recorder) Record(rec Record) error {
	if r == nil {
		return nil
	}
	if err := rec.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := time.Now()
	if r.now != nil {
		t = r.now()
	}
	if len(r.recs) == 0 || r.last.IsZero() {
		rec.Delta = 0
	} else {
		rec.Delta = t.Sub(r.last)
		if rec.Delta < 0 {
			rec.Delta = 0 // a stepped-back wall clock must not poison the log
		}
	}
	r.last = t
	r.recs = append(r.recs, rec) //tracevm:allow-alloc (amortized growth of the replay log)
	return nil
}

// Len reports the number of records held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

// Log returns a snapshot copy of the accumulated log; the recorder keeps
// accumulating independently.
func (r *Recorder) Log() *Log {
	if r == nil {
		return &Log{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Log{Records: append([]Record(nil), r.recs...)}
}

// Save commits the accumulated log to path atomically. An empty recorder
// refuses to write — a zero-record log is always an operator mistake.
func (r *Recorder) Save(path string) error {
	l := r.Log()
	if len(l.Records) == 0 {
		return fmt.Errorf("replay: nothing recorded, refusing to write %s", path)
	}
	return Save(path, l)
}
