package replay

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/snapshot"
)

// Binary layout (all integers varint/uvarint, fixed words little-endian):
//
//	magic     "tracevm/replay/v1\n"
//	payload   uvarint |records| · records
//	trailer   u32 CRC32-IEEE over magic+payload
//
//	record    u8 refKind · str ref (workload name or source text) · str key
//	          u8 mode · f64 threshold · varint startDelay · uvarint decay
//	          varint maxSteps · varint timeoutNs · uvarint seed
//	          uvarint deltaNs
//	str       uvarint length · bytes
//
// As in internal/snapshot, Decode never trusts a length field for
// allocation: every record costs at least one encoded byte, so any count is
// capped by the bytes remaining.

const (
	magic       = Schema + "\n"
	magicPrefix = "tracevm/replay/"

	// maxRefLen bounds inline source text (matching the daemon's 1 MiB
	// request body cap); maxKeyLen bounds the content key, a short hash.
	maxRefLen = 1 << 20
	maxKeyLen = 128
)

var crcTable = crc32.IEEETable

// Encode serializes a log. Encoding is deterministic: byte-equality of two
// encodings means stream-equality, which is what lets a committed fixture be
// pinned against its generator.
func Encode(l *Log) []byte {
	n := len(magic) + 16
	for i := range l.Records {
		n += 48 + len(l.Records[i].Workload) + len(l.Records[i].Source) + len(l.Records[i].Key)
	}
	b := make([]byte, 0, n)

	b = append(b, magic...)
	b = binary.AppendUvarint(b, uint64(len(l.Records)))
	for i := range l.Records {
		r := &l.Records[i]
		b = append(b, r.Kind)
		ref := r.Workload
		if r.Kind != RefWorkload {
			ref = r.Source
		}
		b = appendString(b, ref)
		b = appendString(b, r.Key)
		b = append(b, byte(r.Mode))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Threshold))
		b = binary.AppendVarint(b, int64(r.StartDelay))
		b = binary.AppendUvarint(b, uint64(r.DecayInterval))
		b = binary.AppendVarint(b, r.MaxSteps)
		b = binary.AppendVarint(b, int64(r.Timeout))
		b = binary.AppendUvarint(b, r.Seed)
		b = binary.AppendUvarint(b, uint64(r.Delta))
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

// Decode parses and validates an encoded traffic log. It never panics on
// arbitrary input (see FuzzReplayDecodeNeverPanics) and returns an error
// wrapping one of the Err* causes for anything malformed: truncation,
// trailing garbage, bad checksum, unknown version, or records violating
// Validate.
func Decode(data []byte) (*Log, error) {
	if len(data) < len(magicPrefix) || string(data[:len(magicPrefix)]) != magicPrefix {
		return nil, fmt.Errorf("%w (no %q header)", ErrBadMagic, magicPrefix)
	}
	nl := strings.IndexByte(string(data[:min(len(data), len(magicPrefix)+16)]), '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w (unterminated version line)", ErrBadMagic)
	}
	if got := string(data[:nl+1]); got != magic {
		return nil, fmt.Errorf("%w %q (want %q)", ErrVersion, strings.TrimSuffix(got, "\n"), Schema)
	}
	if len(data) < nl+1+4 {
		return nil, fmt.Errorf("%w: truncated before checksum", ErrCorrupt)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if want := binary.LittleEndian.Uint32(trailer); crc32.Checksum(body, crcTable) != want {
		return nil, ErrChecksum
	}

	d := &decoder{b: body[len(magic):]}
	n := d.count()
	l := &Log{}
	if d.err == nil && n > 0 {
		l.Records = make([]Record, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		var r Record
		r.Kind = d.u8()
		if d.err == nil && r.Kind >= numRefKinds {
			d.fail("record %d: unknown reference kind %d", i, r.Kind)
		}
		ref := d.str(maxRefLen)
		if r.Kind == RefWorkload {
			r.Workload = ref
		} else {
			r.Source = ref
		}
		r.Key = d.str(maxKeyLen)
		r.Mode = core.Mode(d.uvarint(uint64(core.ModeTraceDeploy)))
		r.Threshold = d.f64()
		if d.err == nil && (r.Threshold < 0 || r.Threshold > 1) {
			d.fail("record %d: threshold %v outside [0,1]", i, r.Threshold)
		}
		r.StartDelay = int32(d.varint(0, math.MaxInt32))
		r.DecayInterval = uint32(d.uvarint(math.MaxUint32))
		r.MaxSteps = d.varint(0, math.MaxInt64)
		r.Timeout = time.Duration(d.varint(0, math.MaxInt64))
		r.Seed = d.uvarint(math.MaxUint64)
		r.Delta = time.Duration(d.uvarint(math.MaxInt64))
		if d.err == nil {
			if err := r.Validate(); err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
		}
		l.Records = append(l.Records, r)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b))
	}
	return l, nil
}

// Save encodes l and commits it to path atomically (with the snapshot
// store's fsync discipline, so a committed log survives a crash).
func Save(path string, l *Log) error { return snapshot.WriteAtomic(path, Encode(l)) }

// Load reads and decodes the traffic log at path. I/O failures (os errors)
// are distinguishable from format rejections (the typed codec errors).
func Load(path string) (*Log, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// decoder is a cursor over the payload; the first failure sticks, so parse
// loops need no per-read error plumbing (same shape as internal/snapshot).
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) uvarint(limit uint64) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	if v > limit {
		d.fail("value %d exceeds limit %d", v, limit)
		return 0
	}
	return v
}

func (d *decoder) varint(lo, hi int64) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.b = d.b[n:]
	if v < lo || v > hi {
		d.fail("value %d outside [%d, %d]", v, lo, hi)
		return 0
	}
	return v
}

// count reads an element count, bounded by the bytes remaining.
func (d *decoder) count() int {
	return int(d.uvarint(uint64(len(d.b))))
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	if math.IsNaN(v) || math.IsInf(v, 0) {
		d.fail("non-finite float")
		return 0
	}
	return v
}

func (d *decoder) str(limit int) string {
	n := int(d.uvarint(uint64(limit)))
	if d.err != nil {
		return ""
	}
	if n > len(d.b) {
		d.fail("truncated string of length %d", n)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
