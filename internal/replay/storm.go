package replay

import (
	"time"

	"repro/internal/core"
)

// FixtureStormLog builds the committed mixed-tenant storm: four built-in
// workloads and two inline MiniJava tenants interleaved pseudo-randomly with
// millisecond-scale arrival gaps, mostly in trace mode with profile and
// plain requests mixed in. The generator is fully deterministic (a fixed
// splitmix64 stream, no clocks), so testdata/storm-mixed.trlog is pinned
// byte-for-byte against it — regenerate with
//
//	go test ./internal/replay -run TestFixturePinned -update
func FixtureStormLog() *Log {
	type tenant struct {
		kind     uint8
		ref      string
		modes    []core.Mode
		maxSteps int64
	}
	tenants := []tenant{
		{RefWorkload, "compress", []core.Mode{core.ModeTrace, core.ModeTrace, core.ModeProfile}, 0},
		{RefWorkload, "scimark", []core.Mode{core.ModeTrace, core.ModeTrace, core.ModePlain}, 0},
		{RefWorkload, "mpegaudio", []core.Mode{core.ModeTrace, core.ModeProfile}, 0},
		{RefWorkload, "soot", []core.Mode{core.ModeTrace}, 0},
		{RefMiniJava, fixtureLoopSource, []core.Mode{core.ModeTrace, core.ModeTrace, core.ModePlain}, 0},
		{RefMiniJava, fixtureBranchSource, []core.Mode{core.ModeTrace, core.ModeProfile}, 0},
	}

	const records = 54
	rng := splitmix64(0x5707201e) // fixed stream pins the fixture
	l := &Log{Records: make([]Record, 0, records)}
	for i := 0; i < records; i++ {
		t := tenants[int(rng.next()%uint64(len(tenants)))]
		mode := t.modes[int(rng.next()%uint64(len(t.modes)))]
		rec := Record{
			Kind:     t.kind,
			Mode:     mode,
			MaxSteps: t.maxSteps,
			Seed:     rng.next(),
			// 0–15 ms gaps: dense enough that a small worker pool sees
			// overlapping tenants, short enough for as-recorded CI replay.
			Delta: time.Duration(rng.next()%16) * time.Millisecond,
		}
		if t.kind == RefWorkload {
			rec.Workload = t.ref
		} else {
			rec.Source = t.ref
		}
		if i == 0 {
			rec.Delta = 0
		}
		l.Records = append(l.Records, rec)
	}
	return l
}

// fixtureLoopSource is a hot single-loop tenant: one dominant trace.
const fixtureLoopSource = `class Main {
    static void main() {
        int i = 0;
        int s = 0;
        while (i < 2000) {
            s = s + i;
            i = i + 1;
        }
        Sys.printlnInt(s);
    }
}`

// fixtureBranchSource alternates branch directions, exercising the branch
// correlation profiler with a less predictable stream than the loop tenant.
const fixtureBranchSource = `class Main {
    static void main() {
        int i = 0;
        int even = 0;
        int odd = 0;
        while (i < 1500) {
            if (i - i / 2 * 2 == 0) {
                even = even + 1;
            } else {
                odd = odd + i;
            }
            i = i + 1;
        }
        Sys.printlnInt(even);
        Sys.printlnInt(odd);
    }
}`

// splitmix64 is the same generator faultinject uses for chaos scheduling,
// duplicated here because importing faultinject would cycle through serve.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	x := uint64(*s)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
