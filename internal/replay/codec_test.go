package replay

import (
	"encoding/binary"
	"errors"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "regenerate testdata fixtures")

func sampleLog() *Log {
	return &Log{Records: []Record{
		{Kind: RefWorkload, Workload: "compress", Mode: core.ModeTrace, Seed: 42},
		{
			Kind: RefMiniJava, Source: "class Main { static void main() { Sys.printlnInt(7); } }",
			Key: "abc123", Mode: core.ModeProfile, Threshold: 0.85, StartDelay: 50,
			DecayInterval: 4096, MaxSteps: 1 << 20, Timeout: 250 * time.Millisecond,
			Seed: 7, Delta: 3 * time.Millisecond,
		},
		{Kind: RefJasm, Source: "iconst_1\nireturn\n", Mode: core.ModePlain, Delta: time.Microsecond},
		{Kind: RefWorkload, Workload: "scimark", Mode: core.ModeTraceDeploy, Threshold: 1, Delta: 15 * time.Millisecond},
	}}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, l := range []*Log{{}, sampleLog(), FixtureStormLog()} {
		data := Encode(l)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(l)) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, l)
		}
		if data2 := Encode(got); string(data2) != string(data) {
			t.Fatalf("re-encode not byte-identical")
		}
	}
}

// normalize maps a nil Records slice to empty so DeepEqual compares content.
func normalize(l *Log) *Log {
	if l.Records == nil {
		return &Log{Records: []Record{}}
	}
	return l
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "storm"+FileExt)
	l := sampleLog()
	if err := Save(path, l); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("load mismatch: got %+v want %+v", got, l)
	}
}

func TestDecodeTruncation(t *testing.T) {
	data := Encode(sampleLog())
	// Every proper prefix must be rejected, never panic, never succeed.
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(data))
		}
	}
}

func TestDecodeBitFlips(t *testing.T) {
	data := Encode(sampleLog())
	for i := 0; i < len(data); i++ {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), data...)
			mut[i] ^= bit
			l, err := Decode(mut)
			if err == nil && string(Encode(l)) != string(data) {
				// A flip in the CRC of a record that still checksums out is
				// impossible (CRC32 catches all single-bit errors), so any
				// accepted mutation is a codec hole.
				t.Fatalf("bit flip at byte %d (mask %#x) accepted with different content", i, bit)
			}
		}
	}
}

func TestDecodeErrorKinds(t *testing.T) {
	good := Encode(sampleLog())

	tests := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBadMagic},
		{"other file", []byte("tracevm/snapshot/v1\n junk"), ErrBadMagic},
		{"future version", mutateMagic(good, "tracevm/replay/v9\n"), ErrVersion},
		{"flipped payload byte", flip(good, len(magic)+2), ErrChecksum},
		{"plain truncation", good[:len(good)-6], ErrChecksum},
		{"truncated payload, valid CRC", refit(good[:len(good)-10]), ErrCorrupt},
	}
	for _, tc := range tests {
		if _, err := Decode(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// mutateMagic swaps the version line and recomputes the trailer, so only the
// intended defect is under test.
func mutateMagic(data []byte, newMagic string) []byte {
	if len(newMagic) != len(magic) {
		panic("test magic must keep length")
	}
	out := append([]byte(newMagic), data[len(magic):len(data)-4]...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
}

// refit appends a freshly computed trailer to an (intentionally damaged)
// body, so the decoder gets past the checksum to the payload defect.
func refit(body []byte) []byte {
	out := append([]byte(nil), body...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
}

func flip(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0x40
	return out
}

func TestRecordValidate(t *testing.T) {
	bad := []Record{
		{Kind: RefWorkload}, // no name
		{Kind: RefWorkload, Workload: "compress", Source: "x"}, // both refs
		{Kind: RefMiniJava},             // no source
		{Kind: 9, Workload: "compress"}, // unknown kind
		{Kind: RefWorkload, Workload: "w", Mode: core.ModeTraceDeploy + 1}, // unknown mode
		{Kind: RefWorkload, Workload: "w", Threshold: 1.5},                 // threshold
		{Kind: RefWorkload, Workload: "w", StartDelay: -1},                 // delay
		{Kind: RefWorkload, Workload: "w", MaxSteps: -5},                   // steps
		{Kind: RefWorkload, Workload: "w", Timeout: -time.Second},          // timeout
		{Kind: RefWorkload, Workload: "w", Delta: -time.Millisecond},       // delta
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad record %d accepted: %+v", i, r)
		}
	}
	good := Record{Kind: RefWorkload, Workload: "compress", Mode: core.ModeTrace}
	if err := good.Validate(); err != nil {
		t.Errorf("good record rejected: %v", err)
	}
}

func TestLogHelpers(t *testing.T) {
	l := sampleLog()
	if got, want := l.Duration(), 3*time.Millisecond+time.Microsecond+15*time.Millisecond; got != want {
		t.Errorf("Duration = %v, want %v", got, want)
	}
	progs := l.Programs()
	if len(progs) != 4 {
		t.Fatalf("Programs = %v, want 4 distinct", progs)
	}
	if progs[0] != "compress" || progs[3] != "scimark" {
		t.Errorf("Programs order = %v", progs)
	}
}

func TestRecorderDeltas(t *testing.T) {
	r := NewRecorder()
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })

	rec := Record{Kind: RefWorkload, Workload: "compress", Mode: core.ModeTrace}
	if err := r.Record(rec); err != nil {
		t.Fatalf("Record: %v", err)
	}
	now = now.Add(7 * time.Millisecond)
	if err := r.Record(rec); err != nil {
		t.Fatalf("Record: %v", err)
	}
	now = now.Add(-time.Hour) // wall clock stepped back
	if err := r.Record(rec); err != nil {
		t.Fatalf("Record: %v", err)
	}
	if err := r.Record(Record{Kind: RefWorkload}); err == nil {
		t.Fatal("malformed record accepted")
	}

	l := r.Log()
	if r.Len() != 3 || len(l.Records) != 3 {
		t.Fatalf("Len = %d, log %d, want 3", r.Len(), len(l.Records))
	}
	if l.Records[0].Delta != 0 || l.Records[1].Delta != 7*time.Millisecond || l.Records[2].Delta != 0 {
		t.Fatalf("deltas = %v %v %v", l.Records[0].Delta, l.Records[1].Delta, l.Records[2].Delta)
	}

	var nilRec *Recorder
	if err := nilRec.Record(rec); err != nil {
		t.Fatalf("nil recorder: %v", err)
	}
	if nilRec.Len() != 0 || len(nilRec.Log().Records) != 0 {
		t.Fatal("nil recorder not empty")
	}
}

func TestRecorderSaveEmpty(t *testing.T) {
	r := NewRecorder()
	if err := r.Save(filepath.Join(t.TempDir(), "x"+FileExt)); err == nil {
		t.Fatal("empty recorder saved")
	}
}

func TestFixturePinned(t *testing.T) {
	path := filepath.Join("testdata", "storm-mixed"+FileExt)
	want := Encode(FixtureStormLog())
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (run with -update to regenerate): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("committed fixture diverged from FixtureStormLog; regenerate with -update")
	}
	l, err := Decode(got)
	if err != nil {
		t.Fatalf("fixture does not decode: %v", err)
	}
	if len(l.Records) < 40 {
		t.Fatalf("fixture has %d records, want a real storm", len(l.Records))
	}
	if progs := l.Programs(); len(progs) < 5 {
		t.Fatalf("fixture covers %d tenants (%v), want mixed-tenant", len(progs), progs)
	}
}
