package replay

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// PlayOptions controls replay pacing and concurrency.
type PlayOptions struct {
	// Scale multiplies every recorded arrival delta: 1 replays as recorded,
	// 0 replays at maximum speed, 0.5 at double speed, 2 at half speed.
	Scale float64
	// MaxInFlight bounds concurrently outstanding submissions (<= 0 means
	// DefaultMaxInFlight). Pacing is governed by arrival deltas; the bound
	// only stops a slow service from accumulating unbounded goroutines.
	MaxInFlight int
}

// DefaultMaxInFlight is the submission-concurrency bound when PlayOptions
// leaves it unset.
const DefaultMaxInFlight = 16

// PlayResult summarizes one replay run.
type PlayResult struct {
	Submitted int64
	Completed int64
	Failed    int64
	// Errors holds the first few failure messages, for reporting.
	Errors []string
	// Wall is the elapsed replay time.
	Wall time.Duration
}

const maxErrorSamples = 8

// Play re-offers every record of the log through emit, honoring recorded
// arrival gaps scaled by opts.Scale. Submissions run concurrently (bounded by
// opts.MaxInFlight) exactly as independent clients would; Play returns once
// every submission has completed or ctx is cancelled mid-pacing. A non-nil
// error from emit counts as a failure but does not stop the replay — a log
// may legitimately contain traffic the service refuses under backpressure.
func Play(ctx context.Context, l *Log, opts PlayOptions, emit func(context.Context, Record) error) (PlayResult, error) {
	if emit == nil {
		return PlayResult{}, fmt.Errorf("replay: nil emit function")
	}
	if opts.Scale < 0 {
		return PlayResult{}, fmt.Errorf("replay: negative pacing scale %v", opts.Scale)
	}
	inflight := opts.MaxInFlight
	if inflight <= 0 {
		inflight = DefaultMaxInFlight
	}

	var (
		res   PlayResult
		errMu sync.Mutex
		wg    sync.WaitGroup
		sem   = make(chan struct{}, inflight)
		timer *time.Timer
	)
	start := time.Now()
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()

	for i := range l.Records {
		rec := l.Records[i]
		if d := time.Duration(float64(rec.Delta) * opts.Scale); d > 0 {
			if timer == nil {
				timer = time.NewTimer(d)
			} else {
				timer.Reset(d)
			}
			select {
			case <-timer.C:
			case <-ctx.Done():
				wg.Wait()
				res.Wall = time.Since(start)
				return res, ctx.Err()
			}
		} else if ctx.Err() != nil {
			wg.Wait()
			res.Wall = time.Since(start)
			return res, ctx.Err()
		}

		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			wg.Wait()
			res.Wall = time.Since(start)
			return res, ctx.Err()
		}
		atomic.AddInt64(&res.Submitted, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if err := emit(ctx, rec); err != nil {
				atomic.AddInt64(&res.Failed, 1)
				errMu.Lock()
				if len(res.Errors) < maxErrorSamples {
					res.Errors = append(res.Errors, err.Error())
				}
				errMu.Unlock()
				return
			}
			atomic.AddInt64(&res.Completed, 1)
		}()
	}
	wg.Wait()
	res.Wall = time.Since(start)
	return res, nil
}
