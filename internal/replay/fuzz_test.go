package replay

import (
	"reflect"
	"testing"
)

// FuzzReplayDecodeNeverPanics asserts the codec's core safety property:
// Decode never panics on arbitrary input, and anything it accepts re-encodes
// and re-decodes to the identical log (decode∘encode is idempotent), matching
// the contract of the snapshot codec's fuzz target.
func FuzzReplayDecodeNeverPanics(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("tracevm/replay/v1\n"))
	f.Add([]byte("tracevm/replay/v9\nxxxx"))
	f.Add(Encode(&Log{}))
	f.Add(Encode(sampleLog()))
	f.Add(Encode(FixtureStormLog()))

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(l)
		l2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of accepted log failed: %v", err)
		}
		if !reflect.DeepEqual(normalize(l), normalize(l2)) {
			t.Fatalf("decode∘encode not idempotent:\n first %+v\nsecond %+v", l, l2)
		}
	})
}
