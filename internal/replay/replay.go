// Package replay implements deterministic traffic record/replay: a compact,
// versioned, checksummed log of the request stream offered to the serving
// layer — per record the program reference (workload name or inline source),
// its registry content key when known, the dispatch mode, the profiler
// parameter overrides, the step/deadline budgets, a client seed, and the
// arrival-time delta since the previous record — so a captured mixed-tenant
// storm can be replayed byte-for-byte in CI and against a live daemon.
//
// The log is a *submission* transcript, not an execution transcript: it
// records what traffic was offered (including requests the service may have
// refused under backpressure), and replaying it re-offers exactly that
// stream. Because program execution is deterministic given the same request,
// replaying a log against a cold service with isolated per-request profilers
// reproduces every per-program counter exactly — which is what turns a
// production incident into a regression test.
//
// Encode/Decode follow the internal/snapshot discipline: a magic version
// line doubling as the file header, varint-packed records, a CRC32-IEEE
// trailer, and a bounded decoder that never trusts a hostile length field
// (see FuzzReplayDecodeNeverPanics).
package replay

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
)

// Schema is the format tag; with a trailing newline it is also the file
// magic, so `head -1` on a .trlog file identifies it.
const Schema = "tracevm/replay/v1"

// FileExt is the conventional on-disk suffix for traffic logs.
const FileExt = ".trlog"

// Program-reference kinds: how Record.Workload/Source are interpreted.
const (
	// RefWorkload: the record names a built-in workload (Record.Workload).
	RefWorkload uint8 = iota
	// RefMiniJava: the record carries inline MiniJava source (Record.Source).
	RefMiniJava
	// RefJasm: the record carries inline jasm assembly (Record.Source).
	RefJasm

	numRefKinds
)

// Record is one submitted request. Exactly one of Workload (Kind ==
// RefWorkload) or Source (Kind == RefMiniJava/RefJasm) is set.
type Record struct {
	// Kind says how the program reference is interpreted (Ref* constants).
	Kind uint8
	// Workload is the built-in benchmark name (Kind == RefWorkload).
	Workload string
	// Source is the inline program text (Kind == RefMiniJava/RefJasm).
	Source string
	// Key is the registry content key of the resolved program, recorded for
	// correlation with snapshots and per-program metrics; empty when the
	// recording client never learned it (e.g. the load generator). Replay
	// re-resolves from the reference, never from the key.
	Key string

	// Mode is the requested dispatch configuration.
	Mode core.Mode
	// Threshold/StartDelay/DecayInterval are the profiler parameter
	// overrides of the request (zero = service default).
	Threshold     float64
	StartDelay    int32
	DecayInterval uint32
	// MaxSteps is the request's instruction budget (0 = unlimited).
	MaxSteps int64
	// Timeout is the request's deadline (0 = service default).
	Timeout time.Duration
	// Seed is free client entropy — the load generator records its draw
	// seed here so a replayed log is self-describing.
	Seed uint64
	// Delta is the arrival-time gap since the previous record (0 for the
	// first); the as-recorded pacing replays these gaps.
	Delta time.Duration
}

// Validate checks the internal consistency of a record (the same rules the
// decoder enforces), so recorders refuse malformed records instead of
// writing a log that will not replay.
func (r *Record) Validate() error {
	switch r.Kind {
	case RefWorkload:
		if r.Workload == "" || r.Source != "" {
			return fmt.Errorf("%w: workload record needs Workload and no Source", ErrCorrupt)
		}
	case RefMiniJava, RefJasm:
		if r.Source == "" || r.Workload != "" {
			return fmt.Errorf("%w: source record needs Source and no Workload", ErrCorrupt)
		}
	default:
		return fmt.Errorf("%w: unknown program reference kind %d", ErrCorrupt, r.Kind)
	}
	if r.Mode > core.ModeTraceDeploy {
		return fmt.Errorf("%w: unknown mode %d", ErrCorrupt, r.Mode)
	}
	if r.Threshold < 0 || r.Threshold > 1 {
		return fmt.Errorf("%w: threshold %v outside [0,1]", ErrCorrupt, r.Threshold)
	}
	if r.StartDelay < 0 {
		return fmt.Errorf("%w: negative start delay", ErrCorrupt)
	}
	if r.MaxSteps < 0 {
		return fmt.Errorf("%w: negative step budget", ErrCorrupt)
	}
	if r.Timeout < 0 || r.Delta < 0 {
		return fmt.Errorf("%w: negative duration", ErrCorrupt)
	}
	return nil
}

// Log is a decoded traffic log: the records in arrival order.
type Log struct {
	Records []Record
}

// Duration sums the arrival deltas — the recorded span of the stream.
func (l *Log) Duration() time.Duration {
	var d time.Duration
	for i := range l.Records {
		d += l.Records[i].Delta
	}
	return d
}

// Programs returns the distinct program references in first-seen order,
// rendered as human-readable labels (workload names, "minijava:…"/"jasm:…"
// for inline sources). Distinctness is by full reference, not by label —
// two inline sources sharing a prefix are two programs.
func (l *Log) Programs() []string {
	seen := make(map[string]bool)
	var out []string
	for i := range l.Records {
		r := &l.Records[i]
		id := string(rune(r.Kind)) + "\x00" + r.Workload + r.Source
		if !seen[id] {
			seen[id] = true
			out = append(out, r.label())
		}
	}
	return out
}

func (r *Record) label() string {
	switch r.Kind {
	case RefWorkload:
		return r.Workload
	case RefMiniJava:
		return "minijava:" + shortRef(r.Source)
	case RefJasm:
		return "jasm:" + shortRef(r.Source)
	}
	return "invalid"
}

func shortRef(s string) string {
	if len(s) > 24 {
		return s[:24] + "…"
	}
	return s
}

// Rejection causes. Every non-nil Decode error wraps exactly one of these,
// mirroring the internal/snapshot codec contract.
var (
	ErrBadMagic = errors.New("replay: not a tracevm traffic log")
	ErrVersion  = errors.New("replay: unsupported traffic log version")
	ErrChecksum = errors.New("replay: checksum mismatch")
	ErrCorrupt  = errors.New("replay: corrupt payload")
)
