package replay

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestPlayMaxSpeed(t *testing.T) {
	l := FixtureStormLog()
	var n int64
	res, err := Play(context.Background(), l, PlayOptions{Scale: 0}, func(ctx context.Context, r Record) error {
		atomic.AddInt64(&n, 1)
		if r.Kind == RefWorkload && r.Workload == "soot" {
			return errors.New("refused")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Play: %v", err)
	}
	if res.Submitted != int64(len(l.Records)) || n != res.Submitted {
		t.Fatalf("submitted %d emits %d, want %d", res.Submitted, n, len(l.Records))
	}
	if res.Completed+res.Failed != res.Submitted {
		t.Fatalf("completed %d + failed %d != submitted %d", res.Completed, res.Failed, res.Submitted)
	}
	if res.Failed == 0 || len(res.Errors) == 0 {
		t.Fatal("emit errors were not counted")
	}
}

func TestPlayRespectsContext(t *testing.T) {
	l := &Log{Records: []Record{
		{Kind: RefWorkload, Workload: "compress", Mode: core.ModeTrace},
		{Kind: RefWorkload, Workload: "compress", Mode: core.ModeTrace, Delta: time.Hour},
	}}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res PlayResult
	var err error
	go func() {
		defer close(done)
		res, err = Play(ctx, l, PlayOptions{Scale: 1}, func(context.Context, Record) error { return nil })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Play did not return after cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Submitted != 1 {
		t.Fatalf("submitted %d before the hour-long gap, want 1", res.Submitted)
	}
}

func TestPlayRejectsBadOptions(t *testing.T) {
	if _, err := Play(context.Background(), &Log{}, PlayOptions{}, nil); err == nil {
		t.Fatal("nil emit accepted")
	}
	if _, err := Play(context.Background(), &Log{}, PlayOptions{Scale: -1}, func(context.Context, Record) error { return nil }); err == nil {
		t.Fatal("negative scale accepted")
	}
}
