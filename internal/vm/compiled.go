package vm

import (
	"math"

	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/trace"
)

// runCompiled executes a trace's tier-2 superinstruction form. It mirrors
// runTrace counter-for-counter and hook-edge-for-hook-edge: the only
// observable differences from the block-by-block path are the tiered
// counters (CompiledDispatches and the per-trace compiled accounting) and
// the time it takes. Checks the block path performs per block — interrupt
// polling and the step budget — are hoisted to trace entry; whenever one of
// them could fire mid-trace, the whole dispatch deopts to runTrace, which
// reproduces the exact tier-1 trap point.
func (m *Machine) runCompiled(t *trace.Trace, p *trace.Program) (next *cfg.Block, last cfg.BlockID, halted bool, err error) {
	if len(p.Segs) == 0 {
		return m.runTrace(t)
	}
	if m.interrupt != nil && m.interrupt.Load() {
		return m.runTrace(t)
	}
	if m.maxSteps > 0 && m.steps+p.TotalInstrs > m.maxSteps {
		return m.runTrace(t)
	}

	t.Entered++
	t.CompiledEntered++
	m.ctr.TracesEntered++
	m.ctr.TraceDispatches++ // the whole trace costs one dispatch
	m.ctr.CompiledDispatches++
	instrsBefore := m.ctr.Instrs

	// One recovery frame for the whole trace (the block path pays one per
	// block); cur tracks the executing segment so a panic is attributed to
	// the same block tier 1 would name.
	cur := p.Segs[0].Block
	defer func() {
		if r := recover(); r != nil {
			err = m.trap(TrapBadProgram, cur.StartPC(), "execution panic: %v", r)
			next, halted = nil, false
		}
	}()

	segs := p.Segs
	blocksRun := 0
	completed := false
	last = cfg.NoBlock
	for i := 0; i < len(segs); i++ {
		seg := &segs[i]
		b := seg.Block
		cur = b
		f := m.top() // re-fetch: call/return segments switch frames
		m.ctr.Instrs += seg.NInstrs
		if m.maxSteps > 0 {
			m.steps += seg.NInstrs
		}
		for j := range seg.Ops {
			if err := m.execSOp(f, seg, &seg.Ops[j]); err != nil {
				return nil, last, false, err
			}
		}
		nxt, h, err := m.execTerm(f, seg)
		if err != nil {
			return nil, last, false, err
		}
		m.ctr.BlockDispatches++
		blocksRun++
		last = b.ID
		if h {
			completed = i == len(segs)-1
			m.accountTrace(t, blocksRun, m.ctr.Instrs-instrsBefore, completed)
			return nil, last, true, nil
		}
		if m.hookInsideTraces && m.hook != nil {
			m.ctr.ProfiledDispatches++
			m.hook.OnDispatch(b.ID, nxt.ID)
		}
		if i == len(segs)-1 {
			completed = true
			next = nxt
			break
		}
		if nxt != segs[i+1].Block {
			t.SideExits[i]++
			t.CompiledGuardExits++
			next = nxt
			break
		}
	}
	if !m.hookInsideTraces && m.hook != nil && next != nil {
		m.ctr.ProfiledDispatches++
		m.hook.OnDispatch(last, next.ID)
	}
	m.accountTrace(t, blocksRun, m.ctr.Instrs-instrsBefore, completed)
	if !completed && t.TierDownAt > 0 && t.CompiledGuardExits >= t.TierDownAt {
		// Guard-exit storm: discard the compiled form and pin the trace at
		// tier 1. The trace itself (and its accounting) survives; only a
		// rebuilt trace gets a fresh shot at tier 2.
		t.Compiled = nil
		t.CompileBarred = true
		if m.tiering != nil {
			m.tiering.TierDown(t)
		}
	}
	return next, last, false, nil
}

// execSOp executes one superinstruction in frame f.
func (m *Machine) execSOp(f *frame, seg *trace.Segment, op *trace.SOp) error {
	switch op.Kind {
	case trace.SExec:
		return m.execInstr(f, seg.Block.Instrs[op.A])
	case trace.SPushConst:
		f.push(Value{N: op.Val})
	case trace.SPushLocal:
		f.push(f.locals[op.A])
	case trace.SStoreLocal:
		f.locals[op.A] = f.pop()
	case trace.SStoreConst:
		f.locals[op.A] = Value{N: op.Val}
	case trace.SMove:
		f.locals[op.A] = f.locals[op.B]
	case trace.SIncLocal:
		f.locals[op.A].N += op.Val
	case trace.SBin:
		return m.execSBin(f, op)
	}
	return nil
}

// execSBin executes a specialized arithmetic superinstruction, reproducing
// execInstr's semantics (wrapping int64, division traps, masked shifts,
// IEEE float ops, NaN-aware compares) on operands read straight from
// locals or baked-in constants.
func (m *Machine) execSBin(f *frame, op *trace.SOp) error {
	var a, b Value
	switch op.Mode {
	case trace.SrcLL:
		a, b = f.locals[op.A], f.locals[op.B]
	case trace.SrcLC:
		a, b = f.locals[op.A], Value{N: op.Val}
	case trace.SrcCL:
		a, b = Value{N: op.Val}, f.locals[op.B]
	default: // SrcL: unary
		a = f.locals[op.A]
	}
	var r Value
	switch op.Op {
	case bytecode.IAdd:
		r = IntVal(a.N + b.N)
	case bytecode.ISub:
		r = IntVal(a.N - b.N)
	case bytecode.IMul:
		r = IntVal(a.N * b.N)
	case bytecode.IDiv:
		if b.N == 0 {
			return m.trap(TrapDivByZero, op.PC, "%d / 0", a.N)
		}
		if b.N == -1 {
			r = IntVal(-a.N)
		} else {
			r = IntVal(a.N / b.N)
		}
	case bytecode.IRem:
		if b.N == 0 {
			return m.trap(TrapDivByZero, op.PC, "%d %% 0", a.N)
		}
		if b.N == -1 {
			r = IntVal(0)
		} else {
			r = IntVal(a.N % b.N)
		}
	case bytecode.IShl:
		r = IntVal(a.N << (uint64(b.N) & 63))
	case bytecode.IShr:
		r = IntVal(a.N >> (uint64(b.N) & 63))
	case bytecode.IUshr:
		r = IntVal(int64(uint64(a.N) >> (uint64(b.N) & 63)))
	case bytecode.IAnd:
		r = IntVal(a.N & b.N)
	case bytecode.IOr:
		r = IntVal(a.N | b.N)
	case bytecode.IXor:
		r = IntVal(a.N ^ b.N)
	case bytecode.FAdd:
		r = FloatVal(a.Float() + b.Float())
	case bytecode.FSub:
		r = FloatVal(a.Float() - b.Float())
	case bytecode.FMul:
		r = FloatVal(a.Float() * b.Float())
	case bytecode.FDiv:
		r = FloatVal(a.Float() / b.Float())
	case bytecode.FRem:
		r = FloatVal(math.Mod(a.Float(), b.Float()))
	case bytecode.FCmpL, bytecode.FCmpG:
		x, y := a.Float(), b.Float()
		switch {
		case x < y:
			r = IntVal(-1)
		case x > y:
			r = IntVal(1)
		case x == y:
			r = IntVal(0)
		default: // NaN involved
			if op.Op == bytecode.FCmpL {
				r = IntVal(-1)
			} else {
				r = IntVal(1)
			}
		}
	case bytecode.INeg:
		r = IntVal(-a.N)
	case bytecode.FNeg:
		r = FloatVal(-a.Float())
	case bytecode.I2F:
		r = FloatVal(float64(a.N))
	case bytecode.F2I:
		r = IntVal(int64(a.Float()))
	default:
		return m.trap(TrapBadProgram, op.PC, "opcode %s is not a compiled arithmetic op", op.Op)
	}
	if op.Dst >= 0 {
		f.locals[op.Dst] = r
	} else {
		f.push(r)
	}
	return nil
}

// execTerm applies a segment's lowered terminator.
func (m *Machine) execTerm(f *frame, seg *trace.Segment) (*cfg.Block, bool, error) {
	t := &seg.Term
	switch t.Kind {
	case trace.TStatic:
		return t.Static, false, nil
	case trace.TPopStatic:
		f.stack = f.stack[:len(f.stack)-int(t.PopN)]
		return t.Static, false, nil
	case trace.TCondI:
		if trace.EvalCond1(t.Op, f.locals[t.A].N) {
			return t.Taken, false, nil
		}
		return t.Fall, false, nil
	case trace.TCondII:
		var a, b int64
		switch t.Mode {
		case trace.SrcLL:
			a, b = f.locals[t.A].N, f.locals[t.B].N
		case trace.SrcLC:
			a, b = f.locals[t.A].N, t.Val
		default: // SrcCL
			a, b = t.Val, f.locals[t.B].N
		}
		if trace.EvalCond2(t.Op, a, b) {
			return t.Taken, false, nil
		}
		return t.Fall, false, nil
	}
	return m.execTerminator(f, seg.Block)
}
