package vm

import "fmt"

// TrapKind classifies runtime errors raised by the machine. Traps replace
// the JVM's exception mechanism: the paper's traces never include exception
// edges ("a large number of branches which are never taken, eg exceptions"),
// and in this VM a trap simply terminates execution with an error.
type TrapKind uint8

const (
	TrapNone TrapKind = iota
	TrapNullDeref
	TrapDivByZero
	TrapIndexOOB
	TrapBadCast
	TrapStackOverflow
	TrapStepLimit
	TrapNoNative
	TrapAbstractCall
	TrapUncaught    // an exception unwound past the outermost frame
	TrapBadProgram  // structural impossibility (verifier gap)
	TrapInterrupted // external cancellation via Options.Interrupt
)

func (k TrapKind) String() string {
	switch k {
	case TrapNullDeref:
		return "null dereference"
	case TrapDivByZero:
		return "integer division by zero"
	case TrapIndexOOB:
		return "array index out of bounds"
	case TrapBadCast:
		return "bad cast"
	case TrapStackOverflow:
		return "call stack overflow"
	case TrapStepLimit:
		return "instruction step limit exceeded"
	case TrapNoNative:
		return "unbound native method"
	case TrapAbstractCall:
		return "abstract method invoked"
	case TrapUncaught:
		return "uncaught exception"
	case TrapBadProgram:
		return "malformed program"
	case TrapInterrupted:
		return "execution interrupted"
	}
	return "unknown trap"
}

// Trap is the error type for runtime failures, carrying the failing method
// and program counter.
type Trap struct {
	Kind   TrapKind
	Detail string
	Method string
	PC     uint32
}

// Error implements error.
func (t *Trap) Error() string {
	msg := fmt.Sprintf("vm trap: %s", t.Kind)
	if t.Detail != "" {
		msg += ": " + t.Detail
	}
	if t.Method != "" {
		msg += fmt.Sprintf(" (at %s pc %d)", t.Method, t.PC)
	}
	return msg
}

// AsTrap unwraps err to a *Trap if it is one.
func AsTrap(err error) (*Trap, bool) {
	t, ok := err.(*Trap)
	return t, ok
}
