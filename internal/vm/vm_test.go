package vm_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/jasm"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

// run assembles and executes a jasm program, returning output and counters.
func run(t *testing.T, src string, opts vm.Options) (string, *stats.Counters, error) {
	t.Helper()
	prog, err := jasm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	var out bytes.Buffer
	opts.Out = &out
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 10_000_000
	}
	ctr := opts.Counters
	if ctr == nil {
		ctr = &stats.Counters{}
		opts.Counters = ctr
	}
	m, err := vm.New(prog, pcfg, opts)
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	err = m.Run()
	return out.String(), ctr, err
}

// mustRun fails the test on a runtime error.
func mustRun(t *testing.T, src string) string {
	t.Helper()
	out, _, err := run(t, src, vm.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

const prelude = `
.class Main
.native static pi ( int ) void println_int
.native static pf ( float ) void println_float
`

func TestIntArithmeticOps(t *testing.T) {
	out := mustRun(t, prelude+`
.method static main ( ) void
    iconst 7 iconst 3 iadd invokestatic Main.pi      ; 10
    iconst 7 iconst 3 isub invokestatic Main.pi      ; 4
    iconst 7 iconst 3 imul invokestatic Main.pi      ; 21
    iconst 7 iconst 3 idiv invokestatic Main.pi      ; 2
    iconst -7 iconst 3 idiv invokestatic Main.pi     ; -2 (Go/Java trunc)
    iconst 7 iconst 3 irem invokestatic Main.pi      ; 1
    iconst -7 iconst 3 irem invokestatic Main.pi     ; -1
    iconst 5 ineg invokestatic Main.pi               ; -5
    iconst 1 iconst 62 ishl invokestatic Main.pi     ; 4611686018427387904
    iconst -8 iconst 1 ishr invokestatic Main.pi     ; -4
    iconst -1 iconst 63 iushr invokestatic Main.pi   ; 1
    iconst 12 iconst 10 iand invokestatic Main.pi    ; 8
    iconst 12 iconst 10 ior invokestatic Main.pi     ; 14
    iconst 12 iconst 10 ixor invokestatic Main.pi    ; 6
    return
.end
.end
.entry Main main
`)
	want := "10\n4\n21\n2\n-2\n1\n-1\n-5\n4611686018427387904\n-4\n1\n8\n14\n6\n"
	if out != want {
		t.Errorf("output:\n%s\nwant:\n%s", out, want)
	}
}

func TestFloatOpsAndComparisons(t *testing.T) {
	out := mustRun(t, prelude+`
.method static main ( ) void
    fconst 1.5 fconst 2.5 fadd invokestatic Main.pf    ; 4
    fconst 1.0 fconst 8.0 fdiv invokestatic Main.pf    ; 0.125
    fconst 7.5 fconst 2.0 frem invokestatic Main.pf    ; 1.5
    fconst 3.0 fneg invokestatic Main.pf               ; -3
    iconst 9 i2f invokestatic Main.pf                  ; 9
    fconst 9.99 f2i invokestatic Main.pi               ; 9
    fconst 1.0 fconst 2.0 fcmpl invokestatic Main.pi   ; -1
    fconst 2.0 fconst 2.0 fcmpg invokestatic Main.pi   ; 0
    fconst 3.0 fconst 2.0 fcmpl invokestatic Main.pi   ; 1
    return
.end
.end
.entry Main main
`)
	want := "4\n0.125\n1.5\n-3\n9\n9\n-1\n0\n1\n"
	if out != want {
		t.Errorf("output:\n%s\nwant:\n%s", out, want)
	}
}

func TestNaNComparisons(t *testing.T) {
	out := mustRun(t, prelude+`
.method static main ( ) void
.locals 1
    fconst 0.0 fconst 0.0 fdiv fstore 0     ; NaN
    fload 0 fconst 1.0 fcmpl invokestatic Main.pi   ; -1 (L orders NaN low)
    fload 0 fconst 1.0 fcmpg invokestatic Main.pi   ; 1  (G orders NaN high)
    fload 0 fload 0 fcmpl invokestatic Main.pi      ; -1 (NaN != NaN)
    return
.end
.end
.entry Main main
`)
	if out != "-1\n1\n-1\n" {
		t.Errorf("NaN comparisons: %q", out)
	}
}

func TestStackManipulation(t *testing.T) {
	out := mustRun(t, prelude+`
.method static main ( ) void
    iconst 1 iconst 2 swap isub invokestatic Main.pi   ; 2-1 = 1
    iconst 5 dup iadd invokestatic Main.pi             ; 10
    iconst 3 iconst 4 dup_x1 iadd isub invokestatic Main.pi ; 4 - (3+4) = -3
    iconst 9 iconst 8 pop invokestatic Main.pi         ; 9
    return
.end
.end
.entry Main main
`)
	if out != "1\n10\n-3\n9\n" {
		t.Errorf("stack ops: %q", out)
	}
}

func TestSwitches(t *testing.T) {
	src := prelude + `
.method static classify ( int ) int
    iload 0
    tableswitch 10 dflt a b c
a:  iconst 100 ireturn
b:  iconst 200 ireturn
c:  iconst 300 ireturn
dflt: iconst -1 ireturn
.end
.method static pick ( int ) int
    iload 0
    lookupswitch dflt 5:five -7:neg 1000:big
five: iconst 55 ireturn
neg:  iconst 77 ireturn
big:  iconst 99 ireturn
dflt: iconst 0 ireturn
.end
.method static main ( ) void
    iconst 10 invokestatic Main.classify invokestatic Main.pi ; 100
    iconst 11 invokestatic Main.classify invokestatic Main.pi ; 200
    iconst 12 invokestatic Main.classify invokestatic Main.pi ; 300
    iconst 13 invokestatic Main.classify invokestatic Main.pi ; -1
    iconst 9  invokestatic Main.classify invokestatic Main.pi ; -1
    iconst 5 invokestatic Main.pick invokestatic Main.pi      ; 55
    iconst -7 invokestatic Main.pick invokestatic Main.pi     ; 77
    iconst 1000 invokestatic Main.pick invokestatic Main.pi   ; 99
    iconst 6 invokestatic Main.pick invokestatic Main.pi      ; 0
    return
.end
.end
.entry Main main
`
	out := mustRun(t, src)
	if out != "100\n200\n300\n-1\n-1\n55\n77\n99\n0\n" {
		t.Errorf("switches: %q", out)
	}
}

func TestObjectsFieldsAndVirtualDispatch(t *testing.T) {
	out := mustRun(t, `
.class Animal
.field legs int
.method speak ( ) int
    iconst 0 ireturn
.end
.end
.class Dog
.super Animal
.method speak ( ) int
    iconst 42 ireturn
.end
.end
.class Main
.native static pi ( int ) void println_int
.method static main ( ) void
.locals 1
    new Dog
    astore 0
    aload 0 iconst 4 putfield Animal.legs
    aload 0 getfield Animal.legs invokestatic Main.pi   ; 4
    aload 0 invokevirtual Animal.speak invokestatic Main.pi ; 42 (override)
    new Animal astore 0
    aload 0 invokevirtual Animal.speak invokestatic Main.pi ; 0
    aload 0 instanceof Dog invokestatic Main.pi          ; 0
    new Dog instanceof Animal invokestatic Main.pi       ; 1
    aconst_null instanceof Animal invokestatic Main.pi   ; 0
    new Dog checkcast Animal pop
    aconst_null checkcast Dog pop                        ; null passes
    return
.end
.end
.entry Main main
`)
	if out != "4\n42\n0\n0\n1\n0\n" {
		t.Errorf("objects: %q", out)
	}
}

func TestStaticsAndSpecialCalls(t *testing.T) {
	out := mustRun(t, `
.class Counter
.field static total int
.method bump ( ) void
    getstatic Counter.total iconst 1 iadd putstatic Counter.total
    return
.end
.end
.class Main
.native static pi ( int ) void println_int
.method static main ( ) void
.locals 1
    new Counter astore 0
    aload 0 invokespecial Counter.bump
    aload 0 invokespecial Counter.bump
    getstatic Counter.total invokestatic Main.pi    ; 2
    return
.end
.end
.entry Main main
`)
	if out != "2\n" {
		t.Errorf("statics: %q", out)
	}
}

func TestArrays(t *testing.T) {
	out := mustRun(t, prelude+`
.method static main ( ) void
.locals 2
    iconst 3 newarray int astore 0
    aload 0 iconst 0 iconst 11 iastore
    aload 0 iconst 2 iconst 33 iastore
    aload 0 iconst 0 iaload aload 0 iconst 2 iaload iadd invokestatic Main.pi  ; 44
    aload 0 arraylength invokestatic Main.pi     ; 3
    iconst 2 newarray float astore 1
    aload 1 iconst 1 fconst 2.5 fastore
    aload 1 iconst 1 faload invokestatic Main.pf ; 2.5
    iconst 4 newarray byte astore 0
    aload 0 iconst 3 iconst 250 bastore
    aload 0 iconst 3 baload invokestatic Main.pi ; 250
    iconst 2 newarray ref astore 1
    aload 1 iconst 0 sconst "x" aastore
    aload 1 iconst 0 aaload ifnonnull ok
    iconst -1 invokestatic Main.pi
ok:
    iconst 7 invokestatic Main.pi                ; 7
    return
.end
.end
.entry Main main
`)
	if out != "44\n3\n2.5\n250\n7\n" {
		t.Errorf("arrays: %q", out)
	}
}

func TestRefConditionals(t *testing.T) {
	out := mustRun(t, prelude+`
.method static main ( ) void
.locals 2
    sconst "a" astore 0
    aload 0 astore 1
    aload 0 aload 1 if_acmpeq same
    iconst 0 invokestatic Main.pi
    goto next
same:
    iconst 1 invokestatic Main.pi     ; 1 (same object)
next:
    sconst "a" aload 0 if_acmpne diff
    iconst 0 invokestatic Main.pi
    return
diff:
    iconst 2 invokestatic Main.pi     ; 2 (distinct allocations)
    aconst_null ifnull isnull
    return
isnull:
    iconst 3 invokestatic Main.pi     ; 3
    return
.end
.end
.entry Main main
`)
	if out != "1\n2\n3\n" {
		t.Errorf("ref conditionals: %q", out)
	}
}

func TestTrapDetails(t *testing.T) {
	src := prelude + `
.method static main ( ) void
.locals 1
    iconst 0 istore 0
    iconst 1 iload 0 idiv invokestatic Main.pi
    return
.end
.end
.entry Main main
`
	_, _, err := run(t, src, vm.Options{})
	trap, ok := vm.AsTrap(err)
	if !ok {
		t.Fatalf("error = %v, want trap", err)
	}
	if trap.Kind != vm.TrapDivByZero {
		t.Errorf("kind = %v", trap.Kind)
	}
	if !strings.Contains(trap.Error(), "Main.main") {
		t.Errorf("trap lacks method context: %v", trap)
	}
}

func TestStepLimit(t *testing.T) {
	src := prelude + `
.method static main ( ) void
loop:
    goto loop
.end
.end
.entry Main main
`
	_, _, err := run(t, src, vm.Options{MaxSteps: 1000})
	trap, ok := vm.AsTrap(err)
	if !ok || trap.Kind != vm.TrapStepLimit {
		t.Fatalf("error = %v, want step-limit trap", err)
	}
}

func TestUnboundNative(t *testing.T) {
	src := `
.class Main
.native static nope ( ) void no_such_native
.method static main ( ) void
    invokestatic Main.nope
    return
.end
.end
.entry Main main
`
	_, _, err := run(t, src, vm.Options{})
	trap, ok := vm.AsTrap(err)
	if !ok || trap.Kind != vm.TrapNoNative {
		t.Fatalf("error = %v, want no-native trap", err)
	}
}

func TestAbstractCallTrap(t *testing.T) {
	src := `
.class Base
.abstract f ( ) int
.end
.class Main
.native static pi ( int ) void println_int
.method static main ( ) void
    new Base invokevirtual Base.f invokestatic Main.pi
    return
.end
.end
.entry Main main
`
	_, _, err := run(t, src, vm.Options{})
	trap, ok := vm.AsTrap(err)
	if !ok || trap.Kind != vm.TrapAbstractCall {
		t.Fatalf("error = %v, want abstract-call trap", err)
	}
}

func TestRegisterNativeOverride(t *testing.T) {
	prog, err := jasm.Assemble(`
.class Main
.native static magic ( ) int custom_magic
.native static pi ( int ) void println_int
.method static main ( ) void
    invokestatic Main.magic invokestatic Main.pi
    return
.end
.end
.entry Main main
`)
	if err != nil {
		t.Fatal(err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	m, err := vm.New(prog, pcfg, vm.Options{Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	m.RegisterNative("custom_magic", func(_ *vm.Machine, _ []vm.Value) (vm.Value, error) {
		return vm.IntVal(1234), nil
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "1234\n" {
		t.Errorf("custom native output = %q", out.String())
	}
}

func TestDispatchCountsMatchModel(t *testing.T) {
	// A straight-line main with one call: count blocks precisely.
	src := prelude + `
.method static f ( ) void
    return
.end
.method static main ( ) void
    invokestatic Main.f
    return
.end
.end
.entry Main main
`
	_, ctr, err := run(t, src, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Blocks executed: main#0 (call) -> f#0 (return) -> main#1 (return).
	// Dispatch edges: main#0->f#0, f#0->main#1, main#1->halt = 3 block
	// dispatches counted (one per executed block).
	if ctr.BlockDispatches != 3 {
		t.Errorf("block dispatches = %d, want 3", ctr.BlockDispatches)
	}
	if ctr.MethodCalls != 1 || ctr.NativeCalls != 0 {
		t.Errorf("calls = %d/%d, want 1/0", ctr.MethodCalls, ctr.NativeCalls)
	}
}

// hookRecorder verifies hook edge sequencing.
type hookRecorder struct {
	edges [][2]cfg.BlockID
}

func (h *hookRecorder) OnDispatch(from, to cfg.BlockID) {
	h.edges = append(h.edges, [2]cfg.BlockID{from, to})
}

func TestHookSeesContiguousEdges(t *testing.T) {
	src := prelude + `
.method static main ( ) void
.locals 1
    iconst 0 istore 0
loop:
    iload 0 iconst 3 if_icmpge done
    iinc 0 1
    goto loop
done:
    return
.end
.end
.entry Main main
`
	h := &hookRecorder{}
	_, _, err := run(t, src, vm.Options{Hook: h})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.edges) == 0 {
		t.Fatal("hook never fired")
	}
	for i := 1; i < len(h.edges); i++ {
		if h.edges[i][0] != h.edges[i-1][1] {
			t.Fatalf("edge %d (%v) does not continue from %v", i, h.edges[i], h.edges[i-1])
		}
	}
}

func TestTraceDispatchWithManualSource(t *testing.T) {
	// Construct a trace by hand over the loop blocks and verify the engine
	// dispatches, completes, and side-exits it correctly.
	src := prelude + `
.method static main ( ) void
.locals 1
    iconst 0 istore 0
loop:
    iload 0 iconst 10 if_icmpge done
    iinc 0 1
    goto loop
done:
    return
.end
.end
.entry Main main
`
	prog, err := jasm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks: 0 entry, 1 header, 2 body, 3 done. Trace: header->body.
	tr := trace.New(0, []cfg.BlockID{1, 2}, 0.97)
	src2 := trace.MapSource{}
	src2.Register(2, 1, tr) // entered when body loops back to header
	ctr := &stats.Counters{}
	m, err := vm.New(prog, pcfg, vm.Options{Traces: src2, Counters: ctr, MaxSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// The body block executes for i=0..9, so the back edge (2,1) occurs 10
	// times with i=1..10; the final entry side-exits at the header (i==10
	// branches to done), the other 9 complete.
	if tr.Entered != 10 {
		t.Errorf("entered = %d, want 10", tr.Entered)
	}
	if tr.Completed != 9 {
		t.Errorf("completed = %d, want 9", tr.Completed)
	}
	if tr.SideExits[0] != 1 {
		t.Errorf("side exits after block 0 = %d, want 1", tr.SideExits[0])
	}
	if ctr.TracesEntered != 10 || ctr.TracesCompleted != 9 {
		t.Errorf("counters: entered %d completed %d", ctr.TracesEntered, ctr.TracesCompleted)
	}
	// Instruction totals must match a plain run.
	ctr2 := &stats.Counters{}
	m2, _ := vm.New(prog, pcfg, vm.Options{Counters: ctr2, MaxSteps: 100000})
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if ctr.Instrs != ctr2.Instrs {
		t.Errorf("instr totals differ: trace %d vs plain %d", ctr.Instrs, ctr2.Instrs)
	}
}

func TestRetiredTraceNotDispatched(t *testing.T) {
	src := prelude + `
.method static main ( ) void
.locals 1
    iconst 0 istore 0
loop:
    iload 0 iconst 5 if_icmpge done
    iinc 0 1
    goto loop
done:
    return
.end
.end
.entry Main main
`
	prog, _ := jasm.Assemble(src)
	pcfg, _ := cfg.BuildProgram(prog)
	tr := trace.New(0, []cfg.BlockID{1, 2}, 0.97)
	tr.Retired = true
	srcMap := trace.MapSource{}
	srcMap.Register(2, 1, tr)
	ctr := &stats.Counters{}
	m, _ := vm.New(prog, pcfg, vm.Options{Traces: srcMap, Counters: ctr, MaxSteps: 100000})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Entered != 0 || ctr.TracesEntered != 0 {
		t.Error("retired trace was dispatched")
	}
}

func TestValueHelpers(t *testing.T) {
	if vm.IntVal(-3).Int() != -3 {
		t.Error("IntVal")
	}
	if vm.FloatVal(2.5).Float() != 2.5 {
		t.Error("FloatVal")
	}
	if vm.BoolVal(true).Int() != 1 || vm.BoolVal(false).Int() != 0 {
		t.Error("BoolVal")
	}
	if !vm.RefVal(nil).IsNull() {
		t.Error("null ref")
	}
	o := vm.NewString("hi")
	if o.Length() != 2 || o.Kind != vm.KindString {
		t.Error("NewString")
	}
	if vm.NewByteArray(4).Length() != 4 {
		t.Error("NewByteArray")
	}
	if vm.NewValueArray(0, 7).Length() != 7 {
		t.Error("NewValueArray")
	}
}

func TestIntDivisionOverflowEdge(t *testing.T) {
	// MinInt64 / -1 and MinInt64 % -1 overflow in Go; Java (and this VM)
	// define them as MinInt64 and 0 respectively.
	out := mustRun(t, prelude+`
.method static main ( ) void
.locals 1
    iconst 1 iconst 63 ishl istore 0      ; MinInt64
    iload 0 iconst -1 idiv invokestatic Main.pi
    iload 0 iconst -1 irem invokestatic Main.pi
    iconst 10 iconst -1 idiv invokestatic Main.pi
    iconst 10 iconst -1 irem invokestatic Main.pi
    return
.end
.end
.entry Main main
`)
	if out != "-9223372036854775808\n0\n-10\n0\n" {
		t.Errorf("division edge cases: %q", out)
	}
}

func TestCheckCastFailureTraps(t *testing.T) {
	src := `
.class A
.end
.class B
.end
.class Main
.method static main ( ) void
    new A checkcast B pop
    return
.end
.end
.entry Main main
`
	_, _, err := run(t, src, vm.Options{})
	trap, ok := vm.AsTrap(err)
	if !ok || trap.Kind != vm.TrapBadCast {
		t.Fatalf("error = %v, want bad-cast trap", err)
	}
}

func TestVirtualCallOnNonObjectTraps(t *testing.T) {
	src := `
.class A
.method f ( ) int
    iconst 1 ireturn
.end
.end
.class Main
.native static pi ( int ) void println_int
.method static main ( ) void
    sconst "not an A" invokevirtual A.f invokestatic Main.pi
    return
.end
.end
.entry Main main
`
	_, _, err := run(t, src, vm.Options{})
	trap, ok := vm.AsTrap(err)
	if !ok || trap.Kind != vm.TrapBadCast {
		t.Fatalf("error = %v, want bad-cast trap", err)
	}
}

func TestFieldAccessOnWrongShapeTraps(t *testing.T) {
	src := `
.class A
.field x int
.end
.class Main
.native static pi ( int ) void println_int
.method static main ( ) void
    iconst 2 newarray int getfield A.x invokestatic Main.pi
    return
.end
.end
.entry Main main
`
	_, _, err := run(t, src, vm.Options{})
	trap, ok := vm.AsTrap(err)
	if !ok || trap.Kind != vm.TrapBadCast {
		t.Fatalf("error = %v, want bad-cast trap", err)
	}
}

func TestArrayKindMismatchTraps(t *testing.T) {
	cases := []string{
		// int load from a byte array
		`iconst 2 newarray byte iconst 0 iaload pop`,
		// byte store into an int array
		`iconst 2 newarray int iconst 0 iconst 1 bastore`,
		// arraylength on a plain object
		`new Main arraylength pop`,
	}
	for i, body := range cases {
		src := `
.class Main
.method static main ( ) void
    ` + body + `
    return
.end
.end
.entry Main main
`
		_, _, err := run(t, src, vm.Options{})
		if trap, ok := vm.AsTrap(err); !ok || trap.Kind != vm.TrapBadCast {
			t.Errorf("case %d: error = %v, want bad-cast trap", i, err)
		}
	}
}

func TestMachineConstructorErrors(t *testing.T) {
	prog, err := jasm.Assemble(`
.class Main
.method static main ( ) void
    return
.end
.end
.entry Main main
`)
	if err != nil {
		t.Fatal(err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	// CFG belonging to another program is rejected.
	prog2, _ := jasm.Assemble(`
.class Other
.method static main ( ) void
    return
.end
.end
.entry Other main
`)
	if _, err := vm.New(prog2, pcfg, vm.Options{}); err == nil {
		t.Error("mismatched CFG accepted")
	}
	// Unlinked program rejected.
	up, _ := jasm.AssembleUnlinked(`
.class X
.method static main ( ) void
    return
.end
.end
.entry X main
`)
	if _, err := vm.New(up, pcfg, vm.Options{}); err == nil {
		t.Error("unlinked program accepted")
	}
}
