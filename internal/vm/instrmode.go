package vm

import (
	"repro/internal/bytecode"
	"repro/internal/classfile"
)

// Per-instruction dispatch engine: the paper's Figure 1 model, "an ordinary
// virtual machine interpreter dispatches one instruction at a time". It
// exists to make the dispatch-granularity comparison measurable: the same
// programs run under instruction dispatch, block dispatch (Figure 2), and
// trace dispatch. Profiling and trace dispatch are block-level concepts and
// are not available in this mode.

// decodedMethod caches the decoded instruction stream of a method plus the
// pc -> index map used to resolve branch targets.
type decodedMethod struct {
	ins []bytecode.Instr
	idx map[uint32]int
}

func (m *Machine) decodedFor(meth *classfile.Method) (*decodedMethod, error) {
	if m.decoded == nil {
		m.decoded = make(map[*classfile.Method]*decodedMethod)
	}
	if d, ok := m.decoded[meth]; ok {
		return d, nil
	}
	ins, err := bytecode.Decode(meth.Code)
	if err != nil {
		return nil, err
	}
	d := &decodedMethod{ins: ins, idx: make(map[uint32]int, len(ins))}
	for i, in := range ins {
		d.idx[in.PC] = i
	}
	m.decoded[meth] = d
	return d, nil
}

// RunInstrMode executes the program with one dispatch per instruction,
// counting each into Counters.InstrDispatches. Output and results are
// identical to Run; only the dispatch accounting and engine shape differ.
func (m *Machine) RunInstrMode() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = m.trap(TrapBadProgram, 0, "execution panic: %v", r)
		}
	}()

	main := m.prog.Main
	m.frames = m.frames[:0]
	f := m.pushFrame(main, nil)
	d, err := m.decodedFor(main)
	if err != nil {
		return err
	}

	// Per-frame return indices parallel to m.frames (the block engine's
	// retBlock is unused here).
	retIdx := []int{0}
	decs := []*decodedMethod{d}
	pc := 0

	for {
		in := d.ins[pc]
		m.ctr.Instrs++
		m.ctr.InstrDispatches++
		if m.interrupt != nil && m.interrupt.Load() {
			return m.trap(TrapInterrupted, in.PC, "cancelled by host")
		}
		if m.maxSteps > 0 {
			m.steps++
			if m.steps > m.maxSteps {
				return m.trap(TrapStepLimit, in.PC, "after %d instructions", m.steps)
			}
		}

		switch bytecode.InfoOf(in.Op).Flow {
		case bytecode.FlowNext:
			if err := m.execInstr(f, in); err != nil {
				return err
			}
			pc++

		case bytecode.FlowGoto:
			pc = d.idx[uint32(in.A)]

		case bytecode.FlowCond:
			taken, err := m.evalCond(f, in)
			if err != nil {
				return err
			}
			if taken {
				pc = d.idx[uint32(in.A)]
			} else {
				pc++
			}

		case bytecode.FlowSwitch:
			key := f.pop().Int()
			target := in.Dflt
			if in.Op == bytecode.TableSwitch {
				if rel := key - int64(in.A); rel >= 0 && rel < int64(len(in.Targets)) {
					target = in.Targets[rel]
				}
			} else {
				for i, k := range in.Keys {
					if int64(k) == key {
						target = in.Targets[i]
						break
					}
				}
			}
			pc = d.idx[target]

		case bytecode.FlowCall:
			ref := &m.prog.MethodRefs[in.A]
			callee := ref.Method
			nargs := callee.NArgs()
			args := m.popArgs(f, nargs)
			if ref.Kind == classfile.RefVirtual {
				recv := args[0].Ref()
				if recv == nil {
					return m.trap(TrapNullDeref, in.PC, "invokevirtual %s on null", callee.QName())
				}
				if recv.Kind != KindObject {
					return m.trap(TrapBadCast, in.PC, "invokevirtual %s on non-object", callee.QName())
				}
				callee = recv.Class.VTable[ref.VSlot]
			} else if ref.Kind == classfile.RefSpecial && args[0].Ref() == nil {
				return m.trap(TrapNullDeref, in.PC, "invokespecial %s on null", callee.QName())
			}
			m.ctr.MethodCalls++
			if callee.Abstract {
				return m.trap(TrapAbstractCall, in.PC, "%s", callee.QName())
			}
			if callee.Native != "" {
				fn := m.natives[callee.Native]
				if fn == nil {
					return m.trap(TrapNoNative, in.PC, "%s -> %q", callee.QName(), callee.Native)
				}
				m.ctr.NativeCalls++
				ret, err := fn(m, args)
				if err != nil {
					return err
				}
				if callee.Ret != classfile.TVoid {
					f.push(ret)
				}
				pc++
				continue
			}
			if len(m.frames) >= m.maxFrames {
				return m.trap(TrapStackOverflow, in.PC, "calling %s at depth %d", callee.QName(), len(m.frames))
			}
			cd, err := m.decodedFor(callee)
			if err != nil {
				return err
			}
			retIdx = append(retIdx, pc+1)
			decs = append(decs, cd)
			f = m.pushFrame(callee, args)
			d = cd
			pc = 0

		case bytecode.FlowReturn:
			var ret Value
			if in.Op != bytecode.ReturnVoid {
				ret = f.pop()
			}
			retMeth := f.method
			m.popFrame()
			r := retIdx[len(retIdx)-1]
			retIdx = retIdx[:len(retIdx)-1]
			decs = decs[:len(decs)-1]
			if len(m.frames) == 0 {
				return nil
			}
			f = m.top()
			d = decs[len(decs)-1]
			pc = r
			if retMeth.Ret != classfile.TVoid {
				f.push(ret)
			}

		case bytecode.FlowHalt:
			return nil

		case bytecode.FlowThrow:
			exc := f.pop().Ref()
			if exc == nil {
				return m.trap(TrapNullDeref, in.PC, "throw null")
			}
			var thrownClass *classfile.Class
			if exc.Kind == KindObject {
				thrownClass = exc.Class
			}
			throwPC := in.PC
			handled := false
			for !handled {
				fr := m.top()
				if h := fr.method.HandlerFor(throwPC, thrownClass); h != nil {
					fr.stack = fr.stack[:0]
					fr.push(RefVal(exc))
					f = fr
					d = decs[len(decs)-1]
					pc = d.idx[h.HandlerPC]
					handled = true
					break
				}
				m.popFrame()
				r := retIdx[len(retIdx)-1]
				retIdx = retIdx[:len(retIdx)-1]
				decs = decs[:len(decs)-1]
				if len(m.frames) == 0 {
					detail := "exception"
					if thrownClass != nil {
						detail = "exception of class " + thrownClass.Name
					}
					return &Trap{Kind: TrapUncaught, Detail: detail, Method: fr.method.QName(), PC: throwPC}
				}
				// The pc to check in the caller is its pending invoke.
				callerDec := decs[len(decs)-1]
				throwPC = callerDec.ins[r-1].PC
			}
		}
	}
}
