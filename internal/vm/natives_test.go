package vm_test

import (
	"strings"
	"testing"

	"repro/internal/vm"
)

const mathPrelude = `
.class Main
.native static pi ( int ) void println_int
.native static pf ( float ) void println_float
.native static sqrt ( float ) float math_sqrt
.native static sin ( float ) float math_sin
.native static cos ( float ) float math_cos
.native static log ( float ) float math_log
.native static exp ( float ) float math_exp
.native static floor ( float ) float math_floor
.native static pow ( float float ) float math_pow
`

func TestMathNatives(t *testing.T) {
	out := mustRun(t, mathPrelude+`
.method static main ( ) void
    fconst 16.0 invokestatic Main.sqrt invokestatic Main.pf     ; 4
    fconst 0.0 invokestatic Main.sin invokestatic Main.pf       ; 0
    fconst 0.0 invokestatic Main.cos invokestatic Main.pf       ; 1
    fconst 1.0 invokestatic Main.log invokestatic Main.pf       ; 0
    fconst 0.0 invokestatic Main.exp invokestatic Main.pf       ; 1
    fconst 3.7 invokestatic Main.floor invokestatic Main.pf     ; 3
    fconst 2.0 fconst 10.0 invokestatic Main.pow invokestatic Main.pf  ; 1024
    return
.end
.end
.entry Main main
`)
	if out != "4\n0\n1\n0\n1\n3\n1024\n" {
		t.Errorf("math natives: %q", out)
	}
}

func TestStringNatives(t *testing.T) {
	out := mustRun(t, `
.class Main
.native static pi ( int ) void println_int
.native static ps ( ref ) void println_str
.native static prs ( ref ) void print_str
.native static strLen ( ref ) int str_len
.native static strAt ( ref int ) int str_at
.native static strBytes ( ref ) ref str_bytes
.native static bytesStr ( ref ) ref bytes_str
.native static nl ( ) void println
.method static main ( ) void
.locals 1
    sconst "abc" invokestatic Main.strLen invokestatic Main.pi    ; 3
    sconst "abc" iconst 2 invokestatic Main.strAt invokestatic Main.pi  ; 99
    sconst "xy" invokestatic Main.strBytes astore 0
    aload 0 arraylength invokestatic Main.pi                       ; 2
    aload 0 invokestatic Main.bytesStr invokestatic Main.ps        ; xy
    sconst "no-newline" invokestatic Main.prs
    invokestatic Main.nl
    return
.end
.end
.entry Main main
`)
	if out != "3\n99\n2\nxy\nno-newline\n" {
		t.Errorf("string natives: %q", out)
	}
}

func TestNativeErrorConditions(t *testing.T) {
	cases := []struct {
		name, body string
		kind       vm.TrapKind
	}{
		{"str_at out of bounds", `sconst "ab" iconst 5 invokestatic Main.strAt invokestatic Main.pi`, vm.TrapIndexOOB},
		{"str_at negative", `sconst "ab" iconst -1 invokestatic Main.strAt invokestatic Main.pi`, vm.TrapIndexOOB},
		{"null string to native", `aconst_null invokestatic Main.strLen invokestatic Main.pi`, vm.TrapNullDeref},
		{"non-string to native", `iconst 3 newarray int invokestatic Main.strLen invokestatic Main.pi`, vm.TrapBadCast},
		{"null bytes to native", `aconst_null invokestatic Main.bytesStr pop`, vm.TrapNullDeref},
		{"non-bytes to native", `sconst "s" invokestatic Main.bytesStr pop`, vm.TrapBadCast},
	}
	prelude := `
.class Main
.native static pi ( int ) void println_int
.native static strLen ( ref ) int str_len
.native static strAt ( ref int ) int str_at
.native static bytesStr ( ref ) ref bytes_str
`
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := prelude + ".method static main ( ) void\n" + tc.body + "\nreturn\n.end\n.end\n.entry Main main\n"
			_, _, err := run(t, src, vm.Options{})
			trap, ok := vm.AsTrap(err)
			if !ok {
				t.Fatalf("error = %v, want trap", err)
			}
			if trap.Kind != tc.kind {
				t.Errorf("kind = %v, want %v", trap.Kind, tc.kind)
			}
		})
	}
}

func TestTrapStrings(t *testing.T) {
	kinds := []vm.TrapKind{
		vm.TrapNullDeref, vm.TrapDivByZero, vm.TrapIndexOOB, vm.TrapBadCast,
		vm.TrapStackOverflow, vm.TrapStepLimit, vm.TrapNoNative,
		vm.TrapAbstractCall, vm.TrapUncaught, vm.TrapBadProgram,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown trap" {
			t.Errorf("kind %d has no description", k)
		}
		if seen[s] {
			t.Errorf("duplicate description %q", s)
		}
		seen[s] = true
	}
	trap := &vm.Trap{Kind: vm.TrapDivByZero, Detail: "x", Method: "A.f", PC: 9}
	if !strings.Contains(trap.Error(), "A.f") || !strings.Contains(trap.Error(), "division") {
		t.Errorf("trap formatting: %v", trap)
	}
}
