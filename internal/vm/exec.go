package vm

import (
	"math"

	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/classfile"
)

func (f *frame) push(v Value) { f.stack = append(f.stack, v) }

func (f *frame) pop() Value {
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}

func (f *frame) peek() Value { return f.stack[len(f.stack)-1] }

// stepBlock executes one basic block in the top frame and applies its
// control transfer: it resolves branch targets, pushes and pops call frames,
// and runs native methods. It returns the next block to dispatch, or
// halted=true when the program finished.
func (m *Machine) stepBlock(b *cfg.Block) (next *cfg.Block, halted bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			// Operand stack underflow or similar structural breakage from
			// hand-written bytecode that the linker's checks cannot see.
			err = m.trap(TrapBadProgram, b.StartPC(), "execution panic: %v", r)
			next, halted = nil, false
		}
	}()

	f := m.top()
	if m.probe != nil {
		m.probe(b, f.locals, f.stack)
	}
	n := len(b.Instrs)
	m.ctr.Instrs += int64(n)
	if m.interrupt != nil && m.interrupt.Load() {
		return nil, false, m.trap(TrapInterrupted, b.StartPC(), "cancelled by host")
	}
	if m.maxSteps > 0 {
		m.steps += int64(n)
		if m.steps > m.maxSteps {
			return nil, false, m.trap(TrapStepLimit, b.StartPC(), "after %d instructions", m.steps)
		}
	}
	for i := 0; i < n-1; i++ {
		if err := m.execInstr(f, b.Instrs[i]); err != nil {
			return nil, false, err
		}
	}
	return m.execTerminator(f, b)
}

// execTerminator executes a block's final instruction and applies its
// control transfer. It is shared by stepBlock and by the compiled-trace
// path (which lowers what it can and delegates the rest here); callers are
// responsible for panic recovery.
func (m *Machine) execTerminator(f *frame, b *cfg.Block) (next *cfg.Block, halted bool, err error) {
	term := b.Terminator()
	switch bytecode.InfoOf(term.Op).Flow {
	case bytecode.FlowNext:
		// Block split by a following leader: the last instruction is an
		// ordinary one.
		if err := m.execInstr(f, term); err != nil {
			return nil, false, err
		}
		return m.blockAt(b.FallThrough, term.PC)

	case bytecode.FlowGoto:
		return m.blockAt(b.Taken, term.PC)

	case bytecode.FlowCond:
		taken, err := m.evalCond(f, term)
		if err != nil {
			return nil, false, err
		}
		if taken {
			return m.blockAt(b.Taken, term.PC)
		}
		return m.blockAt(b.FallThrough, term.PC)

	case bytecode.FlowSwitch:
		key := f.pop().Int()
		switch term.Op {
		case bytecode.TableSwitch:
			idx := key - int64(term.A)
			if idx >= 0 && idx < int64(len(b.SwitchTargets)) {
				return m.blockAt(b.SwitchTargets[idx], term.PC)
			}
			return m.blockAt(b.SwitchDefault, term.PC)
		default: // LookupSwitch
			for i, k := range term.Keys {
				if int64(k) == key {
					return m.blockAt(b.SwitchTargets[i], term.PC)
				}
			}
			return m.blockAt(b.SwitchDefault, term.PC)
		}

	case bytecode.FlowCall:
		return m.invoke(f, b, term)

	case bytecode.FlowReturn:
		var ret Value
		if term.Op != bytecode.ReturnVoid {
			ret = f.pop()
		}
		m.popFrame()
		if len(m.frames) == 0 {
			return nil, true, nil
		}
		caller := m.top()
		if f.method.Ret != classfile.TVoid {
			caller.push(ret)
		}
		if caller.retBlock == nil {
			return nil, false, m.trap(TrapBadProgram, term.PC, "return with no recorded return site in %s", caller.method.QName())
		}
		return caller.retBlock, false, nil

	case bytecode.FlowHalt:
		return nil, true, nil

	case bytecode.FlowThrow:
		exc := f.pop().Ref()
		if exc == nil {
			return nil, false, m.trap(TrapNullDeref, term.PC, "throw null")
		}
		return m.unwind(exc, term.PC)
	}
	return nil, false, m.trap(TrapBadProgram, term.PC, "unhandled terminator %s", term.Op)
}

// unwind walks the frame stack looking for an exception handler covering
// the throwing pc; frames without one are discarded, with the pending call
// site becoming the pc checked in the caller. The matched handler's block
// is the dynamic successor of the throw.
func (m *Machine) unwind(exc *Object, pc uint32) (*cfg.Block, bool, error) {
	var thrownClass *classfile.Class
	if exc.Kind == KindObject {
		thrownClass = exc.Class
	}
	for {
		f := m.top()
		if h := f.method.HandlerFor(pc, thrownClass); h != nil {
			f.stack = f.stack[:0]
			f.push(RefVal(exc))
			mc := m.cfg.Methods[f.method.ID]
			hb := mc.BlockAtPC(h.HandlerPC)
			if hb == nil {
				return nil, false, m.trap(TrapBadProgram, pc, "handler pc %d has no block", h.HandlerPC)
			}
			return hb, false, nil
		}
		m.popFrame()
		if len(m.frames) == 0 {
			detail := "exception"
			if thrownClass != nil {
				detail = "exception of class " + thrownClass.Name
			}
			return nil, false, &Trap{Kind: TrapUncaught, Detail: detail, Method: f.method.QName(), PC: pc}
		}
		pc = m.top().callPC
	}
}

func (m *Machine) blockAt(id cfg.BlockID, pc uint32) (*cfg.Block, bool, error) {
	b := m.cfg.Block(id)
	if b == nil {
		return nil, false, m.trap(TrapBadProgram, pc, "control transfer to unknown block %d", id)
	}
	return b, false, nil
}

func (m *Machine) evalCond(f *frame, in bytecode.Instr) (bool, error) {
	switch in.Op {
	case bytecode.IfEq:
		return f.pop().Int() == 0, nil
	case bytecode.IfNe:
		return f.pop().Int() != 0, nil
	case bytecode.IfLt:
		return f.pop().Int() < 0, nil
	case bytecode.IfGe:
		return f.pop().Int() >= 0, nil
	case bytecode.IfGt:
		return f.pop().Int() > 0, nil
	case bytecode.IfLe:
		return f.pop().Int() <= 0, nil
	case bytecode.IfICmpEq, bytecode.IfICmpNe, bytecode.IfICmpLt,
		bytecode.IfICmpGe, bytecode.IfICmpGt, bytecode.IfICmpLe:
		b := f.pop().Int()
		a := f.pop().Int()
		switch in.Op {
		case bytecode.IfICmpEq:
			return a == b, nil
		case bytecode.IfICmpNe:
			return a != b, nil
		case bytecode.IfICmpLt:
			return a < b, nil
		case bytecode.IfICmpGe:
			return a >= b, nil
		case bytecode.IfICmpGt:
			return a > b, nil
		default:
			return a <= b, nil
		}
	case bytecode.IfACmpEq:
		b := f.pop().Ref()
		a := f.pop().Ref()
		return a == b, nil
	case bytecode.IfACmpNe:
		b := f.pop().Ref()
		a := f.pop().Ref()
		return a != b, nil
	case bytecode.IfNull:
		return f.pop().IsNull(), nil
	case bytecode.IfNonNull:
		return !f.pop().IsNull(), nil
	}
	return false, m.trap(TrapBadProgram, in.PC, "not a conditional: %s", in.Op)
}

// invoke handles the three invoke opcodes, including native dispatch.
func (m *Machine) invoke(f *frame, b *cfg.Block, in bytecode.Instr) (*cfg.Block, bool, error) {
	ref := &m.prog.MethodRefs[in.A]
	callee := ref.Method
	nargs := callee.NArgs()

	// Pop arguments (last argument on top of stack) into the scratch
	// buffer; pushFrame copies them before the buffer is reused.
	args := m.popArgs(f, nargs)

	if ref.Kind == classfile.RefVirtual {
		recv := args[0].Ref()
		if recv == nil {
			return nil, false, m.trap(TrapNullDeref, in.PC, "invokevirtual %s on null", callee.QName())
		}
		if recv.Kind != KindObject {
			return nil, false, m.trap(TrapBadCast, in.PC, "invokevirtual %s on non-object", callee.QName())
		}
		if ref.VSlot >= len(recv.Class.VTable) {
			return nil, false, m.trap(TrapBadProgram, in.PC, "vtable slot %d out of range for class %s", ref.VSlot, recv.Class.Name)
		}
		callee = recv.Class.VTable[ref.VSlot]
	} else if ref.Kind == classfile.RefSpecial {
		if args[0].Ref() == nil {
			return nil, false, m.trap(TrapNullDeref, in.PC, "invokespecial %s on null", callee.QName())
		}
	}
	m.ctr.MethodCalls++

	if callee.Abstract {
		return nil, false, m.trap(TrapAbstractCall, in.PC, "%s", callee.QName())
	}

	retSite, halted, err := m.blockAt(b.FallThrough, in.PC)
	if err != nil || halted {
		return retSite, halted, err
	}

	if callee.Native != "" {
		fn := m.natives[callee.Native]
		if fn == nil {
			return nil, false, m.trap(TrapNoNative, in.PC, "%s -> %q", callee.QName(), callee.Native)
		}
		m.ctr.NativeCalls++
		ret, err := fn(m, args)
		if err != nil {
			if t, ok := AsTrap(err); ok && t.Method == "" {
				t.Method = callee.QName()
			}
			return nil, false, err
		}
		if callee.Ret != classfile.TVoid {
			f.push(ret)
		}
		// A native call does not enter bytecode: control resumes at the
		// return site directly, so the dispatch edge is call-block -> site.
		return retSite, false, nil
	}

	if len(m.frames) >= m.maxFrames {
		return nil, false, m.trap(TrapStackOverflow, in.PC, "calling %s at depth %d", callee.QName(), len(m.frames))
	}
	entry := m.cfg.MethodEntry(callee)
	if entry == nil {
		return nil, false, m.trap(TrapBadProgram, in.PC, "callee %s has no bytecode", callee.QName())
	}
	f.retBlock = retSite
	f.callPC = in.PC
	m.pushFrame(callee, args)
	return entry, false, nil
}

// execInstr executes one non-control-flow instruction in frame f.
func (m *Machine) execInstr(f *frame, in bytecode.Instr) error {
	switch in.Op {
	case bytecode.Nop:

	// Constants.
	case bytecode.IConst:
		f.push(IntVal(int64(in.A)))
	case bytecode.FConst:
		f.push(FloatVal(in.F))
	case bytecode.SConst:
		f.push(RefVal(NewString(m.prog.Strings[in.A])))
	case bytecode.AConstNull:
		f.push(RefVal(nil))

	// Locals.
	case bytecode.ILoad, bytecode.FLoad, bytecode.ALoad:
		f.push(f.locals[in.A])
	case bytecode.IStore, bytecode.FStore, bytecode.AStore:
		f.locals[in.A] = f.pop()
	case bytecode.IInc:
		f.locals[in.A].N += int64(in.B)

	// Stack manipulation.
	case bytecode.Pop:
		f.pop()
	case bytecode.Dup:
		f.push(f.peek())
	case bytecode.DupX1:
		a := f.pop()
		b := f.pop()
		f.push(a)
		f.push(b)
		f.push(a)
	case bytecode.Swap:
		a := f.pop()
		b := f.pop()
		f.push(a)
		f.push(b)

	// Integer arithmetic.
	case bytecode.IAdd:
		b := f.pop().Int()
		f.push(IntVal(f.pop().Int() + b))
	case bytecode.ISub:
		b := f.pop().Int()
		f.push(IntVal(f.pop().Int() - b))
	case bytecode.IMul:
		b := f.pop().Int()
		f.push(IntVal(f.pop().Int() * b))
	case bytecode.IDiv:
		b := f.pop().Int()
		a := f.pop().Int()
		if b == 0 {
			return m.trap(TrapDivByZero, in.PC, "%d / 0", a)
		}
		if b == -1 {
			// MinInt64 / -1 overflows; Java defines the result as
			// MinInt64, which is exactly the wrapping negation.
			f.push(IntVal(-a))
		} else {
			f.push(IntVal(a / b))
		}
	case bytecode.IRem:
		b := f.pop().Int()
		a := f.pop().Int()
		if b == 0 {
			return m.trap(TrapDivByZero, in.PC, "%d %% 0", a)
		}
		if b == -1 {
			f.push(IntVal(0)) // avoids the MinInt64 % -1 overflow panic
		} else {
			f.push(IntVal(a % b))
		}
	case bytecode.INeg:
		f.push(IntVal(-f.pop().Int()))
	case bytecode.IShl:
		b := f.pop().Int()
		f.push(IntVal(f.pop().Int() << (uint64(b) & 63)))
	case bytecode.IShr:
		b := f.pop().Int()
		f.push(IntVal(f.pop().Int() >> (uint64(b) & 63)))
	case bytecode.IUshr:
		b := f.pop().Int()
		f.push(IntVal(int64(uint64(f.pop().Int()) >> (uint64(b) & 63))))
	case bytecode.IAnd:
		b := f.pop().Int()
		f.push(IntVal(f.pop().Int() & b))
	case bytecode.IOr:
		b := f.pop().Int()
		f.push(IntVal(f.pop().Int() | b))
	case bytecode.IXor:
		b := f.pop().Int()
		f.push(IntVal(f.pop().Int() ^ b))

	// Float arithmetic.
	case bytecode.FAdd:
		b := f.pop().Float()
		f.push(FloatVal(f.pop().Float() + b))
	case bytecode.FSub:
		b := f.pop().Float()
		f.push(FloatVal(f.pop().Float() - b))
	case bytecode.FMul:
		b := f.pop().Float()
		f.push(FloatVal(f.pop().Float() * b))
	case bytecode.FDiv:
		b := f.pop().Float()
		f.push(FloatVal(f.pop().Float() / b))
	case bytecode.FRem:
		b := f.pop().Float()
		f.push(FloatVal(math.Mod(f.pop().Float(), b)))
	case bytecode.FNeg:
		f.push(FloatVal(-f.pop().Float()))

	// Conversions.
	case bytecode.I2F:
		f.push(FloatVal(float64(f.pop().Int())))
	case bytecode.F2I:
		f.push(IntVal(int64(f.pop().Float())))

	// Float comparison.
	case bytecode.FCmpL, bytecode.FCmpG:
		b := f.pop().Float()
		a := f.pop().Float()
		switch {
		case a < b:
			f.push(IntVal(-1))
		case a > b:
			f.push(IntVal(1))
		case a == b:
			f.push(IntVal(0))
		default: // NaN involved
			if in.Op == bytecode.FCmpL {
				f.push(IntVal(-1))
			} else {
				f.push(IntVal(1))
			}
		}

	// Objects.
	case bytecode.New:
		f.push(RefVal(NewInstance(m.prog.Classes[in.A])))
	case bytecode.GetField:
		ref := &m.prog.FieldRefs[in.A]
		o := f.pop().Ref()
		if o == nil {
			return m.trap(TrapNullDeref, in.PC, "getfield %s", ref.Name)
		}
		if o.Kind != KindObject || ref.Field.Offset >= len(o.Fields) {
			return m.trap(TrapBadCast, in.PC, "getfield %s on incompatible object", ref.Name)
		}
		f.push(o.Fields[ref.Field.Offset])
	case bytecode.PutField:
		ref := &m.prog.FieldRefs[in.A]
		v := f.pop()
		o := f.pop().Ref()
		if o == nil {
			return m.trap(TrapNullDeref, in.PC, "putfield %s", ref.Name)
		}
		if o.Kind != KindObject || ref.Field.Offset >= len(o.Fields) {
			return m.trap(TrapBadCast, in.PC, "putfield %s on incompatible object", ref.Name)
		}
		o.Fields[ref.Field.Offset] = v
	case bytecode.GetStatic:
		ref := &m.prog.FieldRefs[in.A]
		f.push(m.statics[ref.Class.ID][ref.Field.Offset])
	case bytecode.PutStatic:
		ref := &m.prog.FieldRefs[in.A]
		m.statics[ref.Class.ID][ref.Field.Offset] = f.pop()
	case bytecode.InstanceOf:
		target := m.prog.Classes[in.A]
		o := f.pop().Ref()
		f.push(BoolVal(o != nil && o.Kind == KindObject && o.Class.IsSubclassOf(target)))
	case bytecode.CheckCast:
		target := m.prog.Classes[in.A]
		o := f.peek().Ref()
		if o != nil && (o.Kind != KindObject || !o.Class.IsSubclassOf(target)) {
			return m.trap(TrapBadCast, in.PC, "cannot cast to %s", target.Name)
		}

	// Arrays.
	case bytecode.NewArray:
		n := f.pop().Int()
		if n < 0 {
			return m.trap(TrapIndexOOB, in.PC, "newarray with negative length %d", n)
		}
		if in.A == bytecode.ElemByte {
			f.push(RefVal(NewByteArray(int(n))))
		} else {
			f.push(RefVal(NewValueArray(in.A, int(n))))
		}
	case bytecode.ArrayLength:
		o := f.pop().Ref()
		if o == nil {
			return m.trap(TrapNullDeref, in.PC, "arraylength on null")
		}
		n := o.Length()
		if n < 0 {
			return m.trap(TrapBadCast, in.PC, "arraylength on non-array")
		}
		f.push(IntVal(int64(n)))
	case bytecode.IALoad, bytecode.FALoad, bytecode.AALoad:
		i := f.pop().Int()
		o := f.pop().Ref()
		if o == nil {
			return m.trap(TrapNullDeref, in.PC, "array load on null")
		}
		if o.Kind != KindArray {
			return m.trap(TrapBadCast, in.PC, "array load on non-array")
		}
		if i < 0 || i >= int64(len(o.Elems)) {
			return m.trap(TrapIndexOOB, in.PC, "index %d, length %d", i, len(o.Elems))
		}
		f.push(o.Elems[i])
	case bytecode.IAStore, bytecode.FAStore, bytecode.AAStore:
		v := f.pop()
		i := f.pop().Int()
		o := f.pop().Ref()
		if o == nil {
			return m.trap(TrapNullDeref, in.PC, "array store on null")
		}
		if o.Kind != KindArray {
			return m.trap(TrapBadCast, in.PC, "array store on non-array")
		}
		if i < 0 || i >= int64(len(o.Elems)) {
			return m.trap(TrapIndexOOB, in.PC, "index %d, length %d", i, len(o.Elems))
		}
		o.Elems[i] = v
	case bytecode.BALoad:
		i := f.pop().Int()
		o := f.pop().Ref()
		if o == nil {
			return m.trap(TrapNullDeref, in.PC, "byte array load on null")
		}
		if o.Kind != KindBytes {
			return m.trap(TrapBadCast, in.PC, "byte array load on non-byte-array")
		}
		if i < 0 || i >= int64(len(o.Bytes)) {
			return m.trap(TrapIndexOOB, in.PC, "index %d, length %d", i, len(o.Bytes))
		}
		f.push(IntVal(int64(o.Bytes[i])))
	case bytecode.BAStore:
		v := f.pop().Int()
		i := f.pop().Int()
		o := f.pop().Ref()
		if o == nil {
			return m.trap(TrapNullDeref, in.PC, "byte array store on null")
		}
		if o.Kind != KindBytes {
			return m.trap(TrapBadCast, in.PC, "byte array store on non-byte-array")
		}
		if i < 0 || i >= int64(len(o.Bytes)) {
			return m.trap(TrapIndexOOB, in.PC, "index %d, length %d", i, len(o.Bytes))
		}
		o.Bytes[i] = byte(v)

	default:
		return m.trap(TrapBadProgram, in.PC, "opcode %s is not executable mid-block", in.Op)
	}
	return nil
}
