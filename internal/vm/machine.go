package vm

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/cfg"
	"repro/internal/classfile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DispatchHook observes block-boundary dispatches. The profiler implements
// it; from and to are the global IDs of the block that just executed and the
// block about to execute. This is the paper's "profiler hook appended to the
// dispatch code".
type DispatchHook interface {
	OnDispatch(from, to cfg.BlockID)
}

// Options configures a Machine.
type Options struct {
	// Out receives program output (default: io.Discard).
	Out io.Writer
	// Hook, if set, is invoked on block dispatches.
	Hook DispatchHook
	// Traces, if set, enables trace dispatch: at every block boundary the
	// engine consults the source and executes a registered trace as a unit.
	Traces trace.Source
	// Tiering, if set alongside Traces, enables tier-2 dispatch: once a
	// trace's dispatch count reaches its tier-up threshold the engine asks
	// the policy to compile it, runs the compiled superinstruction form
	// while it holds, and discards it again (notifying the policy) after a
	// guard-exit storm. Nil keeps every trace on the block-by-block path.
	Tiering trace.Tiering
	// HookInsideTraces controls profiling fidelity during trace execution.
	// True (measurement mode) runs the hook on every intra-trace edge, so
	// the branch correlation graph sees the full execution stream — this is
	// the paper's experimental framework configuration used for Tables
	// I–V. False (deployment mode) runs a single hook per trace dispatch,
	// the configuration whose overhead Table VII models.
	HookInsideTraces bool
	// Counters receives execution statistics (default: a fresh Counters).
	Counters *stats.Counters
	// MaxSteps bounds executed instructions; 0 means no bound.
	MaxSteps int64
	// MaxFrames bounds call depth (default 1 << 14).
	MaxFrames int
	// Interrupt, if set, is polled at block boundaries: storing true makes
	// the machine stop with a TrapInterrupted trap at the next dispatch.
	// This is how a serving layer cancels a runaway program without killing
	// the process; the flag may be set from any goroutine.
	Interrupt *atomic.Bool
	// Probe, if set, is called at the entry of every executed block —
	// ordinary dispatch and trace dispatch alike — with the live frame
	// state. It exists for differential checkers (the value-flow soundness
	// harness compares static claims against these observations); the
	// slices alias the running frame and must not be mutated or retained.
	// A nil probe costs the block loop a single predictable branch.
	Probe Probe
}

// Probe observes one block entry. See Options.Probe for the contract.
type Probe func(b *cfg.Block, locals, stack []Value)

// Machine executes one program. A machine is single-threaded and not safe
// for concurrent use; run each program on its own machine.
type Machine struct {
	prog *classfile.Program
	cfg  *cfg.ProgramCFG

	out              io.Writer
	hook             DispatchHook
	traces           trace.Source
	tiering          trace.Tiering
	hookInsideTraces bool
	ctr              *stats.Counters
	maxSteps         int64
	maxFrames        int
	interrupt        *atomic.Bool
	probe            Probe

	// traceIx is the concrete dense index behind traces when the source
	// implements trace.IndexedSource; the dispatch loop calls it directly,
	// skipping the per-dispatch interface call.
	traceIx *trace.Index

	natives map[string]NativeFunc
	statics [][]Value // per class ID
	frames  []*frame
	pool    []*frame // retired frames for reuse (calls are hot)
	argbuf  []Value  // scratch for popping call arguments
	steps   int64
	decoded map[*classfile.Method]*decodedMethod // per-instruction engine cache
}

type frame struct {
	method   *classfile.Method
	locals   []Value
	stack    []Value
	retBlock *cfg.Block // resume point after a callee returns
	callPC   uint32     // pc of the pending invoke (for exception tables)
}

// New creates a machine for a linked program with prebuilt CFGs.
func New(prog *classfile.Program, pcfg *cfg.ProgramCFG, opts Options) (*Machine, error) {
	if !prog.Linked() {
		return nil, fmt.Errorf("vm: program is not linked")
	}
	if prog.Main == nil {
		return nil, fmt.Errorf("vm: program has no entry point")
	}
	if pcfg == nil || pcfg.Program != prog {
		return nil, fmt.Errorf("vm: CFG does not belong to the program")
	}
	if opts.Out == nil {
		opts.Out = io.Discard
	}
	if opts.Counters == nil {
		opts.Counters = &stats.Counters{}
	}
	if opts.MaxFrames == 0 {
		opts.MaxFrames = 1 << 14
	}
	m := &Machine{
		prog:             prog,
		cfg:              pcfg,
		out:              opts.Out,
		hook:             opts.Hook,
		traces:           opts.Traces,
		tiering:          opts.Tiering,
		hookInsideTraces: opts.HookInsideTraces,
		ctr:              opts.Counters,
		maxSteps:         opts.MaxSteps,
		maxFrames:        opts.MaxFrames,
		interrupt:        opts.Interrupt,
		probe:            opts.Probe,
		natives:          builtinNatives(),
	}
	if is, ok := opts.Traces.(trace.IndexedSource); ok {
		m.traceIx = is.Index()
	}
	m.statics = make([][]Value, len(prog.Classes))
	for i, c := range prog.Classes {
		m.statics[i] = make([]Value, c.NumStatic)
	}
	return m, nil
}

// Counters returns the machine's statistics record.
func (m *Machine) Counters() *stats.Counters { return m.ctr }

// Program returns the machine's program.
func (m *Machine) Program() *classfile.Program { return m.prog }

// CFG returns the machine's control-flow graphs.
func (m *Machine) CFG() *cfg.ProgramCFG { return m.cfg }

// Run executes the program's entry method to completion.
//
//tracevm:hotpath
func (m *Machine) Run() error {
	main := m.prog.Main
	entry := m.cfg.MethodEntry(main)
	if entry == nil {
		return fmt.Errorf("vm: entry method %s has no bytecode", main.QName())
	}
	m.frames = m.frames[:0]
	m.pushFrame(main, nil)

	cur := entry
	prev := cfg.NoBlock
	for {
		// Trace dispatch: if a trace is registered on the arrival edge,
		// execute it as a unit. The dense-index path is the common one; the
		// interface path serves baseline selectors with custom sources.
		if prev != cfg.NoBlock {
			var t *trace.Trace
			if m.traceIx != nil {
				t = m.traceIx.Lookup(prev, cur.ID)
			} else if m.traces != nil {
				t = m.traces.Lookup(prev, cur.ID)
			}
			if t != nil && !t.Retired {
				if m.tiering != nil && t.Compiled == nil && !t.CompileBarred && t.TierUpAt > 0 && t.Entered >= t.TierUpAt {
					if t.Compiled = m.tiering.Compile(t); t.Compiled == nil {
						t.CompileBarred = true
					}
				}
				var (
					next   *cfg.Block
					last   cfg.BlockID
					halted bool
					err    error
				)
				if p := t.Compiled; p != nil && m.probe == nil {
					next, last, halted, err = m.runCompiled(t, p)
				} else {
					next, last, halted, err = m.runTrace(t)
				}
				if err != nil {
					return err
				}
				if halted {
					return nil
				}
				prev, cur = last, next
				continue
			}
		}

		next, halted, err := m.stepBlock(cur)
		if err != nil {
			return err
		}
		m.ctr.BlockDispatches++
		m.ctr.TraceDispatches++
		if halted {
			return nil
		}
		if m.hook != nil {
			m.ctr.ProfiledDispatches++
			m.hook.OnDispatch(cur.ID, next.ID)
		}
		prev, cur = cur.ID, next
	}
}

// runTrace executes trace t, whose entry block is the block about to run.
// It returns the block to dispatch next after completion or side exit, plus
// the ID of the last block the trace actually executed (the "from" side of
// the next dispatch edge).
//
//tracevm:hotpath
func (m *Machine) runTrace(t *trace.Trace) (next *cfg.Block, last cfg.BlockID, halted bool, err error) {
	t.Entered++
	m.ctr.TracesEntered++
	m.ctr.TraceDispatches++ // the whole trace costs one dispatch
	instrsBefore := m.ctr.Instrs

	// Resolve the block sequence once per trace; later executions reuse it.
	blocks := t.Prepared
	if blocks == nil {
		blocks = make([]*cfg.Block, len(t.Blocks)) //tracevm:allow-alloc (cold: first execution of a freshly generated trace)
		for i, id := range t.Blocks {
			b := m.cfg.Block(id)
			if b == nil {
				//tracevm:allow-alloc (cold: trap construction on a corrupt trace)
				return nil, cfg.NoBlock, false, &Trap{Kind: TrapBadProgram, Detail: fmt.Sprintf("trace %d references unknown block %d", t.ID, id)}
			}
			blocks[i] = b
		}
		t.Prepared = blocks
	}

	blocksRun := 0
	completed := false
	last = cfg.NoBlock
	for i := 0; i < len(blocks); i++ {
		b := blocks[i]
		nxt, h, err := m.stepBlock(b)
		if err != nil {
			return nil, last, false, err
		}
		m.ctr.BlockDispatches++
		blocksRun++
		last = b.ID
		if h {
			// The program ended inside the trace. Account the blocks run so
			// far; reaching the final block counts as completion.
			completed = i == len(blocks)-1
			m.accountTrace(t, blocksRun, m.ctr.Instrs-instrsBefore, completed)
			return nil, last, true, nil
		}
		if m.hookInsideTraces && m.hook != nil {
			m.ctr.ProfiledDispatches++
			m.hook.OnDispatch(b.ID, nxt.ID)
		}
		if i == len(blocks)-1 {
			completed = true
			next = nxt
			break
		}
		if nxt != blocks[i+1] {
			// Side exit: the actual successor diverged from the recorded
			// path; fall back to ordinary dispatch at the actual successor.
			t.SideExits[i]++
			next = nxt
			break
		}
	}
	if !m.hookInsideTraces && m.hook != nil && next != nil {
		// Deployment mode: a trace dispatch executes a single profiling
		// statement — the exit edge keeps the branch context current.
		m.ctr.ProfiledDispatches++
		m.hook.OnDispatch(last, next.ID)
	}
	m.accountTrace(t, blocksRun, m.ctr.Instrs-instrsBefore, completed)
	return next, last, false, nil
}

func (m *Machine) accountTrace(t *trace.Trace, blocksRun int, instrs int64, completed bool) {
	m.ctr.BlocksInTraces += int64(blocksRun)
	m.ctr.InstrsInTraces += instrs
	if completed {
		t.Completed++
		m.ctr.TracesCompleted++
		m.ctr.CompletedTraceBlocksSum += int64(blocksRun)
		m.ctr.InstrsInCompletedTraces += instrs
	}
}

func (m *Machine) pushFrame(meth *classfile.Method, args []Value) *frame {
	var f *frame
	if n := len(m.pool); n > 0 {
		f = m.pool[n-1]
		m.pool = m.pool[:n-1]
		if cap(f.locals) < meth.MaxLocals {
			f.locals = make([]Value, meth.MaxLocals)
		} else {
			f.locals = f.locals[:meth.MaxLocals]
			clear(f.locals)
		}
		f.stack = f.stack[:0]
		f.retBlock = nil
		f.callPC = 0
	} else {
		f = &frame{
			locals: make([]Value, meth.MaxLocals),
			stack:  make([]Value, 0, 16),
		}
	}
	f.method = meth
	copy(f.locals, args)
	m.frames = append(m.frames, f)
	return f
}

// popFrame retires the top frame into the reuse pool and returns it; the
// returned frame stays readable until the next pushFrame.
func (m *Machine) popFrame() *frame {
	f := m.frames[len(m.frames)-1]
	m.frames = m.frames[:len(m.frames)-1]
	m.pool = append(m.pool, f)
	return f
}

// popArgs pops the top n stack values into the machine's scratch buffer
// (valid until the next popArgs). pushFrame copies them into the callee's
// locals, and natives do not retain their argument slice.
func (m *Machine) popArgs(f *frame, n int) []Value {
	if cap(m.argbuf) < n {
		m.argbuf = make([]Value, n)
	}
	args := m.argbuf[:n]
	for i := n - 1; i >= 0; i-- {
		args[i] = f.pop()
	}
	return args
}

func (m *Machine) top() *frame { return m.frames[len(m.frames)-1] }

// trap builds a Trap annotated with the current method and pc.
func (m *Machine) trap(kind TrapKind, pc uint32, format string, args ...any) error {
	t := &Trap{Kind: kind, Detail: fmt.Sprintf(format, args...), PC: pc}
	if len(m.frames) > 0 {
		t.Method = m.top().method.QName()
	}
	return t
}
