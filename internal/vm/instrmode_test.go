package vm_test

import (
	"bytes"
	"testing"

	"repro/internal/cfg"
	"repro/internal/minijava"
	"repro/internal/stats"
	"repro/internal/vm"
)

// runBoth executes a MiniJava program under both engines and returns the
// outputs and counters.
func runBoth(t *testing.T, src string) (blockOut, instrOut string, blockCtr, instrCtr *stats.Counters) {
	t.Helper()
	prog, err := minijava.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}

	var out1 bytes.Buffer
	blockCtr = &stats.Counters{}
	m1, err := vm.New(prog, pcfg, vm.Options{Out: &out1, Counters: blockCtr, MaxSteps: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Run(); err != nil {
		t.Fatalf("block engine: %v", err)
	}

	var out2 bytes.Buffer
	instrCtr = &stats.Counters{}
	m2, err := vm.New(prog, pcfg, vm.Options{Out: &out2, Counters: instrCtr, MaxSteps: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.RunInstrMode(); err != nil {
		t.Fatalf("instr engine: %v", err)
	}
	return out1.String(), out2.String(), blockCtr, instrCtr
}

func TestInstrModeMatchesBlockMode(t *testing.T) {
	cases := []string{
		// Arithmetic, loops, calls.
		`class Main {
            static int f(int a, int b) { return a * b + a % (b + 1); }
            static void main() {
                int s = 0;
                for (int i = 1; i < 2000; i = i + 1) { s = s + f(i, i % 13); }
                Sys.printlnInt(s);
            }
        }`,
		// Virtual dispatch and fields.
		`class A { int v() { return 1; } }
         class B extends A { int x; int v() { return x + 2; } }
         class Main { static void main() {
            A[] xs = new A[6];
            for (int i = 0; i < 6; i = i + 1) {
                if (i % 2 == 0) { xs[i] = new A(); }
                else { B b = new B(); b.x = i; xs[i] = b; }
            }
            int s = 0;
            for (int i = 0; i < 6; i = i + 1) { s = s + xs[i].v(); }
            Sys.printlnInt(s);
         } }`,
		// Floats and natives.
		`class Main { static void main() {
            float s = 0.0;
            for (int i = 0; i < 100; i = i + 1) { s = s + Sys.sqrt(Sys.toFloat(i)); }
            Sys.printlnInt(Sys.toInt(s));
         } }`,
		// Strings and byte arrays.
		`class Main { static void main() {
            byte[] b = Sys.strBytes("dispatch");
            int s = 0;
            for (int i = 0; i < b.length; i = i + 1) { s = s * 31 + b[i]; }
            Sys.printlnInt(s);
         } }`,
	}
	for i, src := range cases {
		b, ins, bc, ic := runBoth(t, src)
		if b != ins {
			t.Errorf("case %d: outputs differ:\nblock: %q\ninstr: %q", i, b, ins)
		}
		if bc.Instrs != ic.Instrs {
			t.Errorf("case %d: instruction counts differ: block %d, instr %d", i, bc.Instrs, ic.Instrs)
		}
		if ic.InstrDispatches != ic.Instrs {
			t.Errorf("case %d: instr mode dispatches (%d) != instructions (%d)", i, ic.InstrDispatches, ic.Instrs)
		}
		if bc.InstrDispatches != 0 {
			t.Errorf("case %d: block mode counted instr dispatches", i)
		}
		if ic.InstrDispatches <= bc.BlockDispatches {
			t.Errorf("case %d: instruction dispatches (%d) should exceed block dispatches (%d)",
				i, ic.InstrDispatches, bc.BlockDispatches)
		}
	}
}

func TestInstrModeTraps(t *testing.T) {
	prog, err := minijava.Compile(`class Main { static void main() {
        int z = 0;
        Sys.printlnInt(5 / z);
    } }`)
	if err != nil {
		t.Fatal(err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, pcfg, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunInstrMode()
	trap, ok := vm.AsTrap(err)
	if !ok || trap.Kind != vm.TrapDivByZero {
		t.Errorf("error = %v, want div-by-zero trap", err)
	}
}

func TestInstrModeStepLimit(t *testing.T) {
	prog, err := minijava.Compile(`class Main { static void main() {
        while (true) { }
    } }`)
	if err != nil {
		t.Fatal(err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, pcfg, vm.Options{MaxSteps: 500})
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunInstrMode()
	trap, ok := vm.AsTrap(err)
	if !ok || trap.Kind != vm.TrapStepLimit {
		t.Errorf("error = %v, want step-limit trap", err)
	}
}

func TestInstrModeRecursion(t *testing.T) {
	b, ins, _, _ := runBoth(t, `class Main {
        static int ack(int m, int n) {
            if (m == 0) { return n + 1; }
            if (n == 0) { return ack(m - 1, 1); }
            return ack(m - 1, ack(m, n - 1));
        }
        static void main() { Sys.printlnInt(ack(2, 3)); }
    }`)
	if b != ins || b != "9\n" {
		t.Errorf("ackermann: block %q, instr %q, want 9", b, ins)
	}
}
