package vm

import "repro/internal/cfg"

// HookFunc adapts a plain function to the DispatchHook interface, the way
// http.HandlerFunc adapts handlers. The fault-injection harness uses it to
// interpose on the dispatch stream (delayed blocks, storm generators)
// without defining a type per injector.
type HookFunc func(from, to cfg.BlockID)

// OnDispatch implements DispatchHook.
func (f HookFunc) OnDispatch(from, to cfg.BlockID) { f(from, to) }
