// Package vm implements the execution engine: a stack-based interpreter for
// the bytecode ISA with three dispatch models — per-instruction, per-block
// (direct-threaded-inlining, the paper's Figure 2), and trace dispatch. The
// profiler attaches to the block dispatch path through the DispatchHook
// interface, and the trace cache supplies traces through trace.Source; both
// are optional, so the same engine serves the unprofiled baseline, the
// profiled interpreter, and the full trace-dispatching VM.
package vm

import (
	"fmt"
	"math"

	"repro/internal/classfile"
)

// Value is one operand-stack or local slot. Integers live in N; floats are
// stored as their IEEE-754 bit pattern in N; references live in R. The
// interpretation is determined entirely by the instruction operating on the
// slot, as in an untyped-slot JVM frame.
type Value struct {
	N int64
	R *Object
}

// IntVal wraps an integer.
func IntVal(n int64) Value { return Value{N: n} }

// FloatVal wraps a float.
func FloatVal(f float64) Value { return Value{N: int64(math.Float64bits(f))} }

// RefVal wraps a reference (nil R is the null reference).
func RefVal(r *Object) Value { return Value{R: r} }

// BoolVal wraps a boolean as 0/1.
func BoolVal(b bool) Value {
	if b {
		return Value{N: 1}
	}
	return Value{N: 0}
}

// Int reads the slot as an integer.
func (v Value) Int() int64 { return v.N }

// Float reads the slot as a float.
func (v Value) Float() float64 { return math.Float64frombits(uint64(v.N)) }

// Ref reads the slot as a reference.
func (v Value) Ref() *Object { return v.R }

// IsNull reports whether the slot holds the null reference.
func (v Value) IsNull() bool { return v.R == nil }

// ObjKind discriminates heap object shapes.
type ObjKind uint8

const (
	// KindObject is a class instance with fields.
	KindObject ObjKind = iota
	// KindArray is an int/float/ref array backed by Elems.
	KindArray
	// KindBytes is a byte array backed by Bytes.
	KindBytes
	// KindString is an immutable string.
	KindString
)

// Object is a heap object: a class instance, an array, or a string.
type Object struct {
	Kind  ObjKind
	Class *classfile.Class // non-nil only for KindObject

	Fields []Value // instance fields, indexed by Field.Offset
	Elems  []Value // int/float/ref array storage
	Bytes  []byte  // byte array storage
	Str    string  // string payload

	// ElemKind records the declared element kind of a KindArray object
	// (bytecode.ElemInt/ElemFloat/ElemRef) for diagnostics and checks.
	ElemKind int32
}

// Length returns the array or string length; -1 for plain objects.
func (o *Object) Length() int {
	switch o.Kind {
	case KindArray:
		return len(o.Elems)
	case KindBytes:
		return len(o.Bytes)
	case KindString:
		return len(o.Str)
	}
	return -1
}

// NewInstance allocates a zeroed instance of a linked class.
func NewInstance(c *classfile.Class) *Object {
	return &Object{Kind: KindObject, Class: c, Fields: make([]Value, c.NumFields)}
}

// NewString allocates a string object.
func NewString(s string) *Object { return &Object{Kind: KindString, Str: s} }

// NewByteArray allocates a byte array.
func NewByteArray(n int) *Object { return &Object{Kind: KindBytes, Bytes: make([]byte, n)} }

// NewValueArray allocates an int/float/ref array of the given element kind.
func NewValueArray(kind int32, n int) *Object {
	return &Object{Kind: KindArray, Elems: make([]Value, n), ElemKind: kind}
}

// GoString renders the object briefly for diagnostics.
func (o *Object) GoString() string {
	switch {
	case o == nil:
		return "null"
	case o.Kind == KindString:
		return fmt.Sprintf("%q", o.Str)
	case o.Kind == KindBytes:
		return fmt.Sprintf("byte[%d]", len(o.Bytes))
	case o.Kind == KindArray:
		return fmt.Sprintf("array[%d]", len(o.Elems))
	default:
		return o.Class.Name + "@"
	}
}
