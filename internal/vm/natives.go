package vm

import (
	"fmt"
	"math"
)

// NativeFunc implements a native method. Args are in declaration order, with
// the receiver first for instance methods. A native returns the method's
// result value (ignored for void methods).
type NativeFunc func(m *Machine, args []Value) (Value, error)

// RegisterNative binds a name usable in Method.Native. Registering after
// machine construction affects subsequent calls.
func (m *Machine) RegisterNative(name string, fn NativeFunc) {
	m.natives[name] = fn
}

// builtinNatives is the standard library available to every program: console
// output, string/byte-array bridging, and the math routines that are native
// in a real JVM (java.lang.Math).
func builtinNatives() map[string]NativeFunc {
	return map[string]NativeFunc{
		// Console output.
		"print_int": func(m *Machine, args []Value) (Value, error) {
			fmt.Fprintf(m.out, "%d", args[0].Int())
			return Value{}, nil
		},
		"println_int": func(m *Machine, args []Value) (Value, error) {
			fmt.Fprintf(m.out, "%d\n", args[0].Int())
			return Value{}, nil
		},
		"print_float": func(m *Machine, args []Value) (Value, error) {
			fmt.Fprintf(m.out, "%g", args[0].Float())
			return Value{}, nil
		},
		"println_float": func(m *Machine, args []Value) (Value, error) {
			fmt.Fprintf(m.out, "%g\n", args[0].Float())
			return Value{}, nil
		},
		"print_str": func(m *Machine, args []Value) (Value, error) {
			s, err := wantString(args[0])
			if err != nil {
				return Value{}, err
			}
			fmt.Fprint(m.out, s)
			return Value{}, nil
		},
		"println_str": func(m *Machine, args []Value) (Value, error) {
			s, err := wantString(args[0])
			if err != nil {
				return Value{}, err
			}
			fmt.Fprintln(m.out, s)
			return Value{}, nil
		},
		"println": func(m *Machine, args []Value) (Value, error) {
			fmt.Fprintln(m.out)
			return Value{}, nil
		},

		// String/byte-array bridging.
		"str_len": func(m *Machine, args []Value) (Value, error) {
			s, err := wantString(args[0])
			if err != nil {
				return Value{}, err
			}
			return IntVal(int64(len(s))), nil
		},
		"str_at": func(m *Machine, args []Value) (Value, error) {
			s, err := wantString(args[0])
			if err != nil {
				return Value{}, err
			}
			i := args[1].Int()
			if i < 0 || i >= int64(len(s)) {
				return Value{}, &Trap{Kind: TrapIndexOOB, Detail: fmt.Sprintf("str_at(%d) on string of length %d", i, len(s))}
			}
			return IntVal(int64(s[i])), nil
		},
		"str_bytes": func(m *Machine, args []Value) (Value, error) {
			s, err := wantString(args[0])
			if err != nil {
				return Value{}, err
			}
			o := NewByteArray(len(s))
			copy(o.Bytes, s)
			return RefVal(o), nil
		},
		"bytes_str": func(m *Machine, args []Value) (Value, error) {
			b, err := wantBytes(args[0])
			if err != nil {
				return Value{}, err
			}
			return RefVal(NewString(string(b))), nil
		},

		// Math (native in a real JVM too).
		"math_sqrt":  mathUnary(math.Sqrt),
		"math_sin":   mathUnary(math.Sin),
		"math_cos":   mathUnary(math.Cos),
		"math_log":   mathUnary(math.Log),
		"math_exp":   mathUnary(math.Exp),
		"math_floor": mathUnary(math.Floor),
		"math_pow": func(m *Machine, args []Value) (Value, error) {
			return FloatVal(math.Pow(args[0].Float(), args[1].Float())), nil
		},
	}
}

func mathUnary(f func(float64) float64) NativeFunc {
	return func(m *Machine, args []Value) (Value, error) {
		return FloatVal(f(args[0].Float())), nil
	}
}

func wantString(v Value) (string, error) {
	o := v.Ref()
	if o == nil {
		return "", &Trap{Kind: TrapNullDeref, Detail: "null string argument to native"}
	}
	if o.Kind != KindString {
		return "", &Trap{Kind: TrapBadCast, Detail: "native expected a string"}
	}
	return o.Str, nil
}

func wantBytes(v Value) ([]byte, error) {
	o := v.Ref()
	if o == nil {
		return nil, &Trap{Kind: TrapNullDeref, Detail: "null byte array argument to native"}
	}
	if o.Kind != KindBytes {
		return nil, &Trap{Kind: TrapBadCast, Detail: "native expected a byte array"}
	}
	return o.Bytes, nil
}
