package traceopt_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/jasm"
	"repro/internal/minijava"
	"repro/internal/trace"
	"repro/internal/traceopt"
)

// buildCFG assembles a jasm program and returns its CFG.
func buildCFG(t *testing.T, src string) *cfg.ProgramCFG {
	t.Helper()
	prog, err := jasm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return pcfg
}

func TestConstantFoldingDetected(t *testing.T) {
	// Block 0: iconst 2, iconst 3, imul (foldable), istore 0;
	//          iload 0 (propagatable), iconst 1, iadd (foldable), pop-like store
	pcfg := buildCFG(t, `
.class Main
.method static main ( ) void
.locals 1
    iconst 2 iconst 3 imul istore 0
    iload 0 iconst 1 iadd istore 0
    goto next
next:
    return
.end
.end
.entry Main main
`)
	// Trace = blocks [0, 1] (the goto-terminated block and the return).
	tr := trace.New(0, []cfg.BlockID{0, 1}, 1)
	r, err := traceopt.New(pcfg).Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Foldable != 2 { // imul and iadd
		t.Errorf("foldable = %d, want 2: %s", r.Foldable, r)
	}
	if r.Propagatable != 1 { // iload 0 of a known constant
		t.Errorf("propagatable = %d, want 1: %s", r.Propagatable, r)
	}
}

func TestDeadStoreWithinBlock(t *testing.T) {
	pcfg := buildCFG(t, `
.class Main
.method static main ( ) void
.locals 1
    iconst 1 istore 0
    iconst 2 istore 0
    return
.end
.end
.entry Main main
`)
	tr := trace.New(0, []cfg.BlockID{0}, 1)
	r, err := traceopt.New(pcfg).Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.DeadStores != 1 {
		t.Errorf("dead stores = %d, want 1: %s", r.DeadStores, r)
	}
}

func TestGuardNotRemovableWhenUnknown(t *testing.T) {
	pcfg := buildCFG(t, `
.class Main
.native static id ( int ) int custom
.method static main ( ) void
.locals 1
    iload 0
    ifeq done
    iinc 0 1
done:
    return
.end
.end
.entry Main main
`)
	// Blocks: 0 [iload, ifeq], 1 [iinc -> fallthrough], 2 [return].
	tr := trace.New(0, []cfg.BlockID{0, 1, 2}, 1)
	r, err := traceopt.New(pcfg).Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.RemovableGuards != 0 {
		t.Errorf("guard on unknown local reported removable: %s", r)
	}
}

func TestGuardRemovableWhenConstant(t *testing.T) {
	pcfg := buildCFG(t, `
.class Main
.method static main ( ) void
    iconst 0
    ifeq done
    nop
done:
    return
.end
.end
.entry Main main
`)
	tr := trace.New(0, []cfg.BlockID{0, 2}, 1) // block 2 is "done: return"
	r, err := traceopt.New(pcfg).Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.RemovableGuards != 1 {
		t.Errorf("constant guard not detected: %s", r)
	}
}

func TestCallsAreBarriers(t *testing.T) {
	pcfg := buildCFG(t, `
.class Main
.method static f ( ) void
    return
.end
.method static main ( ) void
.locals 1
    iconst 5 istore 0
    invokestatic Main.f
    iload 0
    pop
    return
.end
.end
.entry Main main
`)
	// main block 0 [iconst, istore, invokestatic], f block, main block 1
	// [iload, pop, return]. Find the global IDs via the method CFGs.
	mainCFG := pcfg.Methods[pcfg.Program.Main.ID]
	var fEntry cfg.BlockID
	for _, m := range pcfg.Program.Methods {
		if m.Name == "f" {
			fEntry = pcfg.MethodEntry(m).ID
		}
	}
	tr := trace.New(0, []cfg.BlockID{mainCFG.Blocks[0].ID, fEntry, mainCFG.Blocks[1].ID}, 1)
	r, err := traceopt.New(pcfg).Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Barriers == 0 {
		t.Errorf("no barriers recorded across a call: %s", r)
	}
	// The iload after the call must NOT be propagatable: the barrier
	// cleared the constant.
	if r.Propagatable != 0 {
		t.Errorf("constant survived a call barrier: %s", r)
	}
}

func TestSummaryWeighting(t *testing.T) {
	var s traceopt.Summary
	s.Add(traceopt.Report{Instrs: 10, Foldable: 5}, 100) // 50% removable, weight 100
	s.Add(traceopt.Report{Instrs: 10}, 900)              // 0% removable, weight 900
	if got := s.Ratio(); got != 0.05 {
		t.Errorf("weighted ratio = %v, want 0.05", got)
	}
	if s.Traces != 2 {
		t.Errorf("traces = %d", s.Traces)
	}
}

func TestSummaryProvenShare(t *testing.T) {
	var s traceopt.Summary
	s.Add(traceopt.Report{Instrs: 10, RemovableGuards: 3, ProvenGuards: 2}, 1)
	s.Add(traceopt.Report{Instrs: 10, RemovableGuards: 1}, 1)
	if got := s.ProvenShare(); got != 0.5 {
		t.Errorf("proven share = %v, want 0.5", got)
	}
	var empty traceopt.Summary
	if got := empty.ProvenShare(); got != 0 {
		t.Errorf("empty proven share = %v, want 0", got)
	}
}

func TestProvenGuardsFromTraceProofs(t *testing.T) {
	pcfg := buildCFG(t, `
.class Main
.method static main ( ) void
    iconst 0
    ifeq done
    nop
done:
    return
.end
.end
.entry Main main
`)
	// Same shape as TestGuardRemovableWhenConstant, but the trace carries a
	// registration-time proof for its single internal guard.
	tr := trace.New(0, []cfg.BlockID{0, 2}, 1)
	tr.GuardProofs = []bool{true}
	r, err := traceopt.New(pcfg).Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.ProvenGuards != 1 {
		t.Errorf("proven guard not counted: %s", r)
	}
	// Without proofs the same trace reports an estimate only.
	bare := trace.New(1, []cfg.BlockID{0, 2}, 1)
	r, err = traceopt.New(pcfg).Analyze(bare)
	if err != nil {
		t.Fatal(err)
	}
	if r.ProvenGuards != 0 {
		t.Errorf("unproven trace reported proven guards: %s", r)
	}
	if r.RemovableGuards != 1 {
		t.Errorf("estimate lost: %s", r)
	}
}

func TestAnalyzeRealWorkloadTraces(t *testing.T) {
	// End-to-end: run a MiniJava program under trace mode, then analyze the
	// cache's traces.
	prog, err := minijava.Compile(`class Main {
        static void main() {
            int s = 0;
            for (int i = 0; i < 30000; i = i + 1) {
                int twelve = 3 * 4;
                s = s + i % twelve;
            }
            Sys.printlnInt(s);
        }
    }`)
	if err != nil {
		t.Fatal(err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(prog, pcfg, core.SessionOptions{Mode: core.ModeTrace})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	traces := sess.Cache.Traces()
	if len(traces) == 0 {
		t.Fatal("no traces to analyze")
	}
	sum, reports, err := traceopt.New(pcfg).AnalyzeAll(traces)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Traces != len(traces) {
		t.Errorf("summary traces = %d, want %d", sum.Traces, len(traces))
	}
	// The loop body computes 3*4 every iteration: the dominant trace must
	// show foldable instructions, so the weighted ratio is positive.
	if sum.Ratio() <= 0 {
		for _, r := range reports {
			t.Logf("%s", r)
		}
		t.Error("no optimization opportunities found in a constant-rich loop")
	}
}

func TestAnalyzeUnknownBlockFails(t *testing.T) {
	pcfg := buildCFG(t, `
.class Main
.method static main ( ) void
    return
.end
.end
.entry Main main
`)
	tr := trace.New(0, []cfg.BlockID{999}, 1)
	if _, err := traceopt.New(pcfg).Analyze(tr); err == nil {
		t.Error("unknown block accepted")
	}
}

func TestFloatFoldingAndComparisons(t *testing.T) {
	pcfg := buildCFG(t, `
.class Main
.method static main ( ) void
.locals 1
    fconst 2.0 fconst 4.0 fmul fstore 0
    fload 0 fneg fstore 0
    fconst 1.0 fconst 2.0 fcmpl istore 0
    fconst 3.5 f2i istore 0
    iconst 5 i2f fstore 0
    iconst 3 ineg istore 0
    return
.end
.end
.entry Main main
`)
	tr := trace.New(0, []cfg.BlockID{0}, 1)
	r, err := traceopt.New(pcfg).Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	// fmul, fneg(on propagated const), fcmpl, f2i, i2f, ineg are foldable;
	// fload 0 after fstore of a const is propagatable.
	if r.Foldable < 5 {
		t.Errorf("foldable = %d, want >= 5: %s", r.Foldable, r)
	}
	if r.Propagatable == 0 {
		t.Errorf("no propagatable loads: %s", r)
	}
}

func TestStackShuffleTracking(t *testing.T) {
	pcfg := buildCFG(t, `
.class Main
.method static main ( ) void
.locals 1
    iconst 2 iconst 3 swap isub istore 0     ; 3-2 via swap: foldable
    iconst 4 dup iadd istore 0               ; dup then iadd: foldable
    iconst 1 iconst 2 dup_x1 iadd iadd istore 0
    iconst 9 pop
    return
.end
.end
.entry Main main
`)
	tr := trace.New(0, []cfg.BlockID{0}, 1)
	r, err := traceopt.New(pcfg).Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Foldable < 4 {
		t.Errorf("stack shuffles broke constant tracking: %s", r)
	}
}

func TestIIncFolding(t *testing.T) {
	pcfg := buildCFG(t, `
.class Main
.method static main ( ) void
.locals 1
    iconst 10 istore 0
    iinc 0 5
    iload 0 pop
    return
.end
.end
.entry Main main
`)
	tr := trace.New(0, []cfg.BlockID{0}, 1)
	r, err := traceopt.New(pcfg).Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Foldable != 1 { // the iinc on a known constant
		t.Errorf("iinc not folded: %s", r)
	}
	if r.Propagatable != 1 { // iload of 15
		t.Errorf("iload after iinc not propagated: %s", r)
	}
}

func TestSwitchGuards(t *testing.T) {
	pcfg := buildCFG(t, `
.class Main
.method static main ( ) void
.locals 1
    iconst 1
    tableswitch 0 dflt a b
a: goto dflt
b: goto dflt
dflt:
    iload 0
    lookupswitch end 5:end
end:
    return
.end
.end
.entry Main main
`)
	// Trace: the tableswitch block (const tag -> removable), then block b,
	// then the lookupswitch block (unknown tag -> kept), then end.
	mc := pcfg.Methods[pcfg.Program.Main.ID]
	var ids []cfg.BlockID
	for _, b := range mc.Blocks {
		ids = append(ids, b.ID)
	}
	tr := trace.New(0, []cfg.BlockID{ids[0], ids[2], ids[3], ids[4]}, 1)
	r, err := traceopt.New(pcfg).Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.RemovableGuards != 1 {
		t.Errorf("removable guards = %d, want exactly the constant tableswitch: %s", r.RemovableGuards, r)
	}
}

func TestHeapStoresEndDeadStoreWindows(t *testing.T) {
	pcfg := buildCFG(t, `
.class Box
.field v int
.end
.class Main
.method static main ( ) void
.locals 2
    new Box astore 1
    iconst 1 istore 0
    aload 1 iconst 9 putfield Box.v     ; heap store: guard
    iconst 2 istore 0                    ; NOT a dead-store pair with above
    iload 0 pop
    return
.end
.end
.entry Main main
`)
	tr := trace.New(0, []cfg.BlockID{0}, 1)
	r, err := traceopt.New(pcfg).Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.DeadStores != 0 {
		t.Errorf("dead store counted across a heap-store guard: %s", r)
	}
}

func TestReportHelpers(t *testing.T) {
	r := traceopt.Report{TraceID: 3, Instrs: 20, Foldable: 2, Propagatable: 1, RemovableGuards: 1, DeadStores: 1}
	if r.Removable() != 5 {
		t.Errorf("Removable = %d", r.Removable())
	}
	if r.Ratio() != 0.25 {
		t.Errorf("Ratio = %v", r.Ratio())
	}
	if r.String() == "" {
		t.Error("empty String")
	}
	empty := traceopt.Report{}
	if empty.Ratio() != 0 {
		t.Error("empty ratio should be 0")
	}
}
