// Package traceopt implements the optimization study the paper names as
// its next step (§6): measuring "what further improvement can be achieved
// by applying optimizations to the traces".
//
// A trace is a single-entry straight-line region whose internal branches
// become guards (side exits), which is exactly the shape the paper argues
// is ideal for optimization (§3.7): control flow is resolved, so classic
// forward dataflow runs without merges. The analyzer symbolically executes
// a trace's instruction stream, tracking constant values through the
// operand stack and the local variables, and classifies every instruction:
//
//   - foldable: arithmetic/comparison whose operands are all constants at
//     trace position (constant folding),
//   - propagatable: a local load whose value is a known constant
//     (constant propagation turns it into a constant),
//   - removable guard: an internal conditional branch whose outcome is
//     statically the trace's recorded direction given the constants,
//   - dead store: a local store overwritten before any read and before any
//     guard that could observe it on a side exit.
//
// Method calls inside a trace are optimization barriers: the callee's
// frame is separate, so the symbolic state is cleared (a real trace
// optimizer would inline small callees — Duesterwald & Bruening's result
// that traces inlining small methods are the optimal unit).
//
// The product is a per-trace and per-run OptReport; the harness weights it
// by trace execution counts to estimate the fraction of the executed
// instruction stream that trace-level optimization could remove.
package traceopt

import (
	"fmt"
	"math"

	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/trace"
)

// absKind classifies a symbolic value.
type absKind uint8

const (
	unknown absKind = iota
	constInt
	constFloat
	constNull
)

type absVal struct {
	kind absKind
	n    int64
	f    float64
}

func intConst(n int64) absVal     { return absVal{kind: constInt, n: n} }
func floatConst(f float64) absVal { return absVal{kind: constFloat, f: f} }

// Report summarizes the optimization opportunities of one trace.
type Report struct {
	TraceID int
	Blocks  int

	Instrs          int // total instructions on the trace path
	Foldable        int // const-operand arithmetic/logic/comparisons
	Propagatable    int // local loads of known constants
	RemovableGuards int // internal branches statically resolved
	DeadStores      int // stores overwritten before any read or guard
	Barriers        int // calls/returns that cleared the symbolic state

	// ProvenGuards is the subset of the trace's internal conditional/switch
	// guards whose side exit the whole-program value-flow oracle proved can
	// never fire (trace.GuardProofs, stamped at registration). Unlike
	// RemovableGuards — an estimate from symbolic execution of the recorded
	// path — a proven guard is backed by a static proof that holds for every
	// execution, so removing it needs no deoptimization fallback. Zero when
	// the trace carries no proofs.
	ProvenGuards int
}

// Removable returns the number of instructions the modeled optimizations
// would eliminate or reduce to constants.
func (r Report) Removable() int {
	return r.Foldable + r.Propagatable + r.RemovableGuards + r.DeadStores
}

// Ratio returns Removable as a fraction of the trace's instructions.
func (r Report) Ratio() float64 {
	if r.Instrs == 0 {
		return 0
	}
	return float64(r.Removable()) / float64(r.Instrs)
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("trace %d: %d instrs, %d foldable, %d propagatable, %d guards removable (%d proven), %d dead stores (%.1f%%)",
		r.TraceID, r.Instrs, r.Foldable, r.Propagatable, r.RemovableGuards, r.ProvenGuards, r.DeadStores, r.Ratio()*100)
}

// Analyzer analyzes traces against a program's CFGs.
type Analyzer struct {
	cfg *cfg.ProgramCFG
}

// New creates an analyzer.
func New(pcfg *cfg.ProgramCFG) *Analyzer { return &Analyzer{cfg: pcfg} }

// state is the symbolic machine state within one frame's view of the trace.
type state struct {
	stack  []absVal
	locals map[int32]absVal

	// Dead-store tracking: for each local, the index (into the trace's
	// instruction classification) of the last store not yet read, valid
	// only until the next guard.
	pendingStore map[int32]int
}

func newState() *state {
	return &state{
		locals:       make(map[int32]absVal),
		pendingStore: make(map[int32]int),
	}
}

func (s *state) push(v absVal) { s.stack = append(s.stack, v) }

func (s *state) pop() absVal {
	if len(s.stack) == 0 {
		// The trace begins mid-computation or crosses a frame boundary;
		// values flowing in are unknown.
		return absVal{}
	}
	v := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	return v
}

func (s *state) popN(n int) []absVal {
	out := make([]absVal, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = s.pop()
	}
	return out
}

// reset clears everything (optimization barrier).
func (s *state) reset() {
	s.stack = s.stack[:0]
	s.locals = make(map[int32]absVal)
	s.pendingStore = make(map[int32]int)
}

// guard invalidates dead-store candidates: a side exit may observe them.
func (s *state) guard() {
	s.pendingStore = make(map[int32]int)
}

// Analyze classifies every instruction along the trace's block path.
func (a *Analyzer) Analyze(t *trace.Trace) (Report, error) {
	rep := Report{TraceID: t.ID, Blocks: t.Len()}
	st := newState()
	dead := make(map[int]bool) // instruction indexes that are dead stores
	idx := 0

	for bi, id := range t.Blocks {
		b := a.cfg.Block(id)
		if b == nil {
			return Report{}, fmt.Errorf("traceopt: trace %d references unknown block %d", t.ID, id)
		}
		var next cfg.BlockID = cfg.NoBlock
		if bi+1 < len(t.Blocks) {
			next = t.Blocks[bi+1]
		}
		n := len(b.Instrs)
		for ii, in := range b.Instrs {
			isTerm := ii == n-1
			rep.Instrs++
			a.step(in, st, &rep, dead, idx, isTerm, b, next)
			idx++
		}
		if next != cfg.NoBlock && t.GuardProven(bi) {
			switch b.Kind {
			case bytecode.FlowCond, bytecode.FlowSwitch:
				rep.ProvenGuards++
			}
		}
	}
	for range dead {
		rep.DeadStores++
	}
	return rep, nil
}

// step symbolically executes one instruction.
func (a *Analyzer) step(in bytecode.Instr, st *state, rep *Report, dead map[int]bool, idx int, isTerm bool, b *cfg.Block, next cfg.BlockID) {
	op := in.Op
	info := bytecode.InfoOf(op)

	switch info.Flow {
	case bytecode.FlowCall, bytecode.FlowReturn, bytecode.FlowThrow:
		// Frame boundary (or unwinding): barrier.
		rep.Barriers++
		st.reset()
		return
	case bytecode.FlowGoto, bytecode.FlowHalt:
		// Unconditional: no guard, nothing to optimize.
		st.guard() // conservative: block boundary may still exit via trap
		return
	case bytecode.FlowCond:
		v := st.popN(bytecode.CondArity(op))
		if allConst(v) {
			rep.RemovableGuards++
		} else {
			st.guard()
		}
		_ = next
		return
	case bytecode.FlowSwitch:
		v := st.pop()
		if v.kind == constInt {
			rep.RemovableGuards++
		} else {
			st.guard()
		}
		return
	}

	// Straight-line instruction (or a FlowNext terminator).
	switch op {
	case bytecode.IConst:
		st.push(intConst(int64(in.A)))
	case bytecode.FConst:
		st.push(floatConst(in.F))
	case bytecode.AConstNull:
		st.push(absVal{kind: constNull})
	case bytecode.SConst, bytecode.New, bytecode.NewArray:
		if op == bytecode.NewArray {
			st.pop()
		}
		st.push(absVal{})

	case bytecode.ILoad, bytecode.FLoad, bytecode.ALoad:
		v, known := st.locals[in.A]
		if known && v.kind != unknown {
			rep.Propagatable++
		}
		// The load reads the local: any pending store is live.
		delete(st.pendingStore, in.A)
		if known {
			st.push(v)
		} else {
			st.push(absVal{})
		}

	case bytecode.IStore, bytecode.FStore, bytecode.AStore:
		if prev, ok := st.pendingStore[in.A]; ok {
			// The previous store is overwritten unread and unguarded.
			dead[prev] = true
		}
		st.pendingStore[in.A] = idx
		st.locals[in.A] = st.pop()

	case bytecode.IInc:
		delete(st.pendingStore, in.A)
		if v, ok := st.locals[in.A]; ok && v.kind == constInt {
			st.locals[in.A] = intConst(v.n + int64(in.B))
			rep.Foldable++
		} else {
			st.locals[in.A] = absVal{}
		}

	case bytecode.Pop:
		st.pop()
	case bytecode.Dup:
		v := st.pop()
		st.push(v)
		st.push(v)
	case bytecode.Swap:
		x, y := st.pop(), st.pop()
		st.push(x)
		st.push(y)
	case bytecode.DupX1:
		x, y := st.pop(), st.pop()
		st.push(x)
		st.push(y)
		st.push(x)

	case bytecode.IAdd, bytecode.ISub, bytecode.IMul, bytecode.IDiv, bytecode.IRem,
		bytecode.IShl, bytecode.IShr, bytecode.IUshr, bytecode.IAnd, bytecode.IOr, bytecode.IXor:
		r := st.pop()
		l := st.pop()
		if l.kind == constInt && r.kind == constInt {
			if v, ok := foldInt(op, l.n, r.n); ok {
				rep.Foldable++
				st.push(intConst(v))
				return
			}
		}
		st.push(absVal{})

	case bytecode.INeg:
		v := st.pop()
		if v.kind == constInt {
			rep.Foldable++
			st.push(intConst(-v.n))
			return
		}
		st.push(absVal{})

	case bytecode.FAdd, bytecode.FSub, bytecode.FMul, bytecode.FDiv, bytecode.FRem:
		r := st.pop()
		l := st.pop()
		if l.kind == constFloat && r.kind == constFloat {
			rep.Foldable++
			st.push(floatConst(foldFloat(op, l.f, r.f)))
			return
		}
		st.push(absVal{})

	case bytecode.FNeg:
		v := st.pop()
		if v.kind == constFloat {
			rep.Foldable++
			st.push(floatConst(-v.f))
			return
		}
		st.push(absVal{})

	case bytecode.I2F:
		v := st.pop()
		if v.kind == constInt {
			rep.Foldable++
			st.push(floatConst(float64(v.n)))
			return
		}
		st.push(absVal{})
	case bytecode.F2I:
		v := st.pop()
		if v.kind == constFloat {
			rep.Foldable++
			st.push(intConst(int64(v.f)))
			return
		}
		st.push(absVal{})

	case bytecode.FCmpL, bytecode.FCmpG:
		r := st.pop()
		l := st.pop()
		if l.kind == constFloat && r.kind == constFloat && !math.IsNaN(l.f) && !math.IsNaN(r.f) {
			rep.Foldable++
			switch {
			case l.f < r.f:
				st.push(intConst(-1))
			case l.f > r.f:
				st.push(intConst(1))
			default:
				st.push(intConst(0))
			}
			return
		}
		st.push(absVal{})

	default:
		// Heap access, string constants, instanceof, arraylength…: consume
		// and produce unknowns using the static stack effect.
		pops := int(info.Pop)
		if pops > 0 {
			st.popN(pops)
		}
		for i := 0; i < int(info.Push); i++ {
			st.push(absVal{})
		}
		// Heap stores can be observed after any exit; they also end dead-
		// store windows conservatively (aliasing with boxed locals is
		// impossible here, but cheap conservatism keeps the claim honest).
		switch op {
		case bytecode.PutField, bytecode.PutStatic, bytecode.IAStore,
			bytecode.FAStore, bytecode.AAStore, bytecode.BAStore:
			st.guard()
		}
	}
}

func allConst(vs []absVal) bool {
	for _, v := range vs {
		if v.kind == unknown {
			return false
		}
	}
	return true
}

func foldInt(op bytecode.Op, a, b int64) (int64, bool) {
	switch op {
	case bytecode.IAdd:
		return a + b, true
	case bytecode.ISub:
		return a - b, true
	case bytecode.IMul:
		return a * b, true
	case bytecode.IDiv:
		if b == 0 {
			return 0, false // folding would hide the trap
		}
		if b == -1 {
			return -a, true // Java wrapping semantics for MinInt64 / -1
		}
		return a / b, true
	case bytecode.IRem:
		if b == 0 {
			return 0, false
		}
		if b == -1 {
			return 0, true
		}
		return a % b, true
	case bytecode.IShl:
		return a << (uint64(b) & 63), true
	case bytecode.IShr:
		return a >> (uint64(b) & 63), true
	case bytecode.IUshr:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case bytecode.IAnd:
		return a & b, true
	case bytecode.IOr:
		return a | b, true
	case bytecode.IXor:
		return a ^ b, true
	}
	return 0, false
}

func foldFloat(op bytecode.Op, a, b float64) float64 {
	switch op {
	case bytecode.FAdd:
		return a + b
	case bytecode.FSub:
		return a - b
	case bytecode.FMul:
		return a * b
	case bytecode.FDiv:
		return a / b
	case bytecode.FRem:
		return math.Mod(a, b)
	}
	return 0
}

// Summary aggregates reports weighted by how often each trace completed,
// estimating the share of the executed trace instruction stream that the
// modeled optimizations would remove, and splitting guard removal into the
// estimated total and the statically proven subset.
type Summary struct {
	Traces            int
	WeightedInstrs    int64
	WeightedRemovable int64

	// Static guard totals across traces: RemovableGuards is the symbolic
	// estimate, ProvenGuards the subset backed by value-flow proofs.
	RemovableGuards int64
	ProvenGuards    int64
}

// Add accumulates one trace's report with its completion count as weight.
func (s *Summary) Add(r Report, completions int64) {
	s.Traces++
	s.WeightedInstrs += int64(r.Instrs) * completions
	s.WeightedRemovable += int64(r.Removable()) * completions
	s.RemovableGuards += int64(r.RemovableGuards)
	s.ProvenGuards += int64(r.ProvenGuards)
}

// Ratio returns the weighted removable fraction.
func (s *Summary) Ratio() float64 {
	if s.WeightedInstrs == 0 {
		return 0
	}
	return float64(s.WeightedRemovable) / float64(s.WeightedInstrs)
}

// ProvenShare returns the fraction of removable guards that carry a static
// proof (0 when no guards are removable).
func (s *Summary) ProvenShare() float64 {
	if s.RemovableGuards == 0 {
		return 0
	}
	return float64(s.ProvenGuards) / float64(s.RemovableGuards)
}

// AnalyzeAll analyzes a set of traces and aggregates them by their observed
// completion counts.
func (a *Analyzer) AnalyzeAll(traces []*trace.Trace) (Summary, []Report, error) {
	var sum Summary
	var reports []Report
	for _, t := range traces {
		r, err := a.Analyze(t)
		if err != nil {
			return Summary{}, nil, err
		}
		reports = append(reports, r)
		sum.Add(r, t.Completed)
	}
	return sum, reports, nil
}
