package workload

// Scimark returns the scientific-kernel workload: the five SciMark 2.0
// kernels (FFT, Jacobi SOR, Monte Carlo integration, sparse matrix-vector
// multiply, dense LU factorization) at reduced sizes. Control flow is
// extremely regular, which is why the paper's scimark rows show the longest
// traces and the fewest signals.
func Scimark() Workload {
	return Workload{
		Name:        "scimark",
		Description: "FFT, SOR, MonteCarlo, SparseMatmult, LU kernels",
		Source: prngSource + `
class FFT {
    // transform performs an in-place radix-2 FFT of re/im (length must be a
    // power of two) using a recurrence for the twiddle factors.
    void transform(float[] re, float[] im) {
        int n = re.length;
        // Bit-reversal permutation.
        int j = 0;
        for (int i = 0; i < n - 1; i = i + 1) {
            if (i < j) {
                float tr = re[i]; re[i] = re[j]; re[j] = tr;
                float ti = im[i]; im[i] = im[j]; im[j] = ti;
            }
            int k = n / 2;
            while (k <= j) { j = j - k; k = k / 2; }
            j = j + k;
        }
        // Danielson-Lanczos butterflies.
        int mmax = 1;
        while (mmax < n) {
            int istep = mmax * 2;
            float theta = 3.141592653589793 / Sys.toFloat(mmax);
            float wr = 1.0;
            float wi = 0.0;
            float wpr = Sys.cos(theta);
            float wpi = Sys.sin(theta);
            for (int m = 0; m < mmax; m = m + 1) {
                for (int i = m; i < n; i = i + istep) {
                    int i2 = i + mmax;
                    float tr = wr * re[i2] - wi * im[i2];
                    float ti = wr * im[i2] + wi * re[i2];
                    re[i2] = re[i] - tr;
                    im[i2] = im[i] - ti;
                    re[i] = re[i] + tr;
                    im[i] = im[i] + ti;
                }
                float nwr = wr * wpr - wi * wpi;
                wi = wr * wpi + wi * wpr;
                wr = nwr;
            }
            mmax = istep;
        }
    }
}

class SOR {
    // relax performs the requested number of Jacobi SOR sweeps.
    float relax(float[][] g, float omega, int iters) {
        int m = g.length;
        float c1 = omega / 4.0;
        float c2 = 1.0 - omega;
        for (int p = 0; p < iters; p = p + 1) {
            for (int i = 1; i < m - 1; i = i + 1) {
                float[] gi = g[i];
                float[] gim = g[i - 1];
                float[] gip = g[i + 1];
                for (int jj = 1; jj < m - 1; jj = jj + 1) {
                    gi[jj] = c1 * (gim[jj] + gip[jj] + gi[jj - 1] + gi[jj + 1]) + c2 * gi[jj];
                }
            }
        }
        float sum = 0.0;
        for (int i = 0; i < m; i = i + 1) {
            for (int jj = 0; jj < m; jj = jj + 1) { sum = sum + g[i][jj]; }
        }
        return sum;
    }
}

class MonteCarlo {
    // integrate estimates pi by sampling the unit square.
    float integrate(Rng rng, int samples) {
        int hits = 0;
        for (int i = 0; i < samples; i = i + 1) {
            float x = rng.nextFloat();
            float y = rng.nextFloat();
            if (x * x + y * y <= 1.0) { hits = hits + 1; }
        }
        return 4.0 * Sys.toFloat(hits) / Sys.toFloat(samples);
    }
}

class Sparse {
    // multiply computes y = A*x for A in compressed-row form, repeatedly.
    float multiply(float[] val, int[] col, int[] rowStart, float[] x, float[] y, int reps) {
        int rows = rowStart.length - 1;
        for (int r = 0; r < reps; r = r + 1) {
            for (int i = 0; i < rows; i = i + 1) {
                float sum = 0.0;
                int end = rowStart[i + 1];
                for (int k = rowStart[i]; k < end; k = k + 1) {
                    sum = sum + val[k] * x[col[k]];
                }
                y[i] = sum;
            }
        }
        float s = 0.0;
        for (int i = 0; i < rows; i = i + 1) { s = s + y[i]; }
        return s;
    }
}

class LU {
    // factor performs in-place LU factorization with partial pivoting and
    // returns the parity-signed sum of the diagonal (a cheap determinant
    // fingerprint surrogate).
    float factor(float[][] a) {
        int n = a.length;
        float sign = 1.0;
        for (int jj = 0; jj < n; jj = jj + 1) {
            // Pivot search.
            int p = jj;
            float maxAbs = a[jj][jj];
            if (maxAbs < 0.0) { maxAbs = 0.0 - maxAbs; }
            for (int i = jj + 1; i < n; i = i + 1) {
                float v = a[i][jj];
                if (v < 0.0) { v = 0.0 - v; }
                if (v > maxAbs) { maxAbs = v; p = i; }
            }
            if (p != jj) {
                float[] tmp = a[p]; a[p] = a[jj]; a[jj] = tmp;
                sign = 0.0 - sign;
            }
            float pivot = a[jj][jj];
            if (pivot > 0.0000001 || pivot < 0.0 - 0.0000001) {
                for (int i = jj + 1; i < n; i = i + 1) {
                    float mult = a[i][jj] / pivot;
                    a[i][jj] = mult;
                    float[] ai = a[i];
                    float[] aj = a[jj];
                    for (int k = jj + 1; k < n; k = k + 1) {
                        ai[k] = ai[k] - mult * aj[k];
                    }
                }
            }
        }
        float d = 0.0;
        for (int i = 0; i < n; i = i + 1) { d = d + a[i][i]; }
        return d * sign;
    }
}

class Main {
    static int fix(float v) {
        // Quantize a float result to a stable integer fingerprint.
        return Sys.toInt(v * 1000.0);
    }

    static void main() {
        Rng rng = new Rng(101);

        // FFT: 256-point transform, repeated.
        FFT fft = new FFT();
        float[] re = new float[256];
        float[] im = new float[256];
        float fftSum = 0.0;
        for (int rep = 0; rep < 12; rep = rep + 1) {
            for (int i = 0; i < re.length; i = i + 1) {
                re[i] = rng.nextFloat() - 0.5;
                im[i] = 0.0;
            }
            fft.transform(re, im);
            fftSum = fftSum + re[1] + im[1];
        }
        Sys.printStr("fft=");
        Sys.printlnInt(fix(fftSum));

        // SOR on a 48x48 grid.
        SOR sor = new SOR();
        float[][] grid = new float[48][];
        for (int i = 0; i < 48; i = i + 1) {
            grid[i] = new float[48];
            for (int jj = 0; jj < 48; jj = jj + 1) { grid[i][jj] = rng.nextFloat(); }
        }
        Sys.printStr("sor=");
        Sys.printlnInt(fix(sor.relax(grid, 1.25, 20)));

        // Monte Carlo pi.
        MonteCarlo mc = new MonteCarlo();
        Sys.printStr("mc=");
        Sys.printlnInt(fix(mc.integrate(rng, 40000)));

        // Sparse 200x200 with ~8 nonzeros per row.
        int rows = 200;
        int nnzPerRow = 8;
        float[] val = new float[rows * nnzPerRow];
        int[] col = new int[rows * nnzPerRow];
        int[] rowStart = new int[rows + 1];
        for (int i = 0; i < rows; i = i + 1) {
            rowStart[i] = i * nnzPerRow;
            for (int k = 0; k < nnzPerRow; k = k + 1) {
                val[i * nnzPerRow + k] = rng.nextFloat();
                col[i * nnzPerRow + k] = rng.nextN(rows);
            }
        }
        rowStart[rows] = rows * nnzPerRow;
        float[] x = new float[rows];
        float[] y = new float[rows];
        for (int i = 0; i < rows; i = i + 1) { x[i] = 1.0 + rng.nextFloat(); }
        Sparse sp = new Sparse();
        Sys.printStr("sparse=");
        Sys.printlnInt(fix(sp.multiply(val, col, rowStart, x, y, 40)));

        // LU of a 32x32 matrix, repeated on fresh matrices.
        LU lu = new LU();
        float luSum = 0.0;
        for (int rep = 0; rep < 8; rep = rep + 1) {
            float[][] a = new float[32][];
            for (int i = 0; i < 32; i = i + 1) {
                a[i] = new float[32];
                for (int jj = 0; jj < 32; jj = jj + 1) {
                    a[i][jj] = rng.nextFloat() - 0.5;
                }
                a[i][i] = a[i][i] + 4.0;
            }
            luSum = luSum + lu.factor(a);
        }
        Sys.printStr("lu=");
        Sys.printlnInt(fix(luSum));
    }
}
`,
	}
}
