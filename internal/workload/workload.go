// Package workload provides the six benchmark programs of the evaluation,
// written in MiniJava, mirroring the behavioural archetypes of the paper's
// suite (four SPECjvm programs, soot, and scimark):
//
//	compress  — LZW compression + decompression round trip over generated
//	            text (simple, predictable behaviour; SPEC _201_compress).
//	javac     — expression lexer + recursive-descent parser + evaluator over
//	            generated sources (irregular, branchy; SPEC _213_javac).
//	raytrace  — sphere/plane ray tracer with virtual intersect/shade methods
//	            (float heavy, polymorphic; SPEC _205_raytrace).
//	mpegaudio — fixed-point subband filtering and windowing DSP loops
//	            (regular long loops; SPEC _222_mpegaudio).
//	soot      — worklist dataflow analysis over randomly generated CFGs with
//	            polymorphic statement nodes (large irregular application).
//	scimark   — FFT, SOR, Monte Carlo, sparse mat-vec and LU kernels
//	            (extremely regular scientific loops).
//
// Every program is deterministic (a seeded xorshift PRNG written in
// MiniJava) and self-checking: it prints checksums whose expected values are
// recorded here and asserted by tests under every dispatch mode.
package workload

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/classfile"
	"repro/internal/minijava"
)

// Workload is one benchmark program.
type Workload struct {
	Name        string
	Description string
	Source      string
	// Expect is the program's full expected output; empty means "not
	// asserted" (unused today — every workload is self-checking).
	Expect string
}

// prngSource is a MiniJava xorshift64* PRNG shared by the workloads that
// need input data. Seeded explicitly so every run is reproducible.
const prngSource = `
class Rng {
    int s;
    void init(int seed) { s = seed * 2685821657736338717 + 1; }
    int next() {
        int x = s;
        x = x ^ (x << 13);
        x = x ^ (x >>> 7);
        x = x ^ (x << 17);
        s = x;
        return x;
    }
    int nextN(int n) {
        int v = next() % n;
        if (v < 0) { return v + n; }
        return v;
    }
    float nextFloat() {
        return Sys.toFloat(nextN(1048576)) / 1048576.0;
    }
}
`

// All returns the six workloads in the paper's reporting order.
func All() []Workload {
	return []Workload{
		Compress(),
		Javac(),
		Raytrace(),
		Mpegaudio(),
		Soot(),
		Scimark(),
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names returns the workload names in order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// Compile compiles the workload and builds its CFGs.
func (w Workload) Compile() (*classfile.Program, *cfg.ProgramCFG, error) {
	prog, err := minijava.Compile(w.Source)
	if err != nil {
		return nil, nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		return nil, nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return prog, pcfg, nil
}
