package workload

// Mpegaudio returns the DSP workload: a fixed-point 32-subband polyphase
// analysis filter bank (the structural core of MPEG audio layer decoding)
// over synthetic samples, plus windowing and quantization passes. Long,
// perfectly regular integer loops dominate, like SPEC _222_mpegaudio.
func Mpegaudio() Workload {
	return Workload{
		Name:        "mpegaudio",
		Description: "fixed-point subband filter bank and windowing",
		Source: prngSource + `
class FilterBank {
    int[] window;   // 512-tap analysis window, Q16 fixed point
    int[] fifo;     // sliding sample window
    int fifoPos;
    int[] subband;  // 32 subband outputs per granule

    void init() {
        window = new int[512];
        fifo = new int[512];
        subband = new int[32];
        fifoPos = 0;
        // Synthesize a plausible symmetric window: raised-cosine-ish shape
        // in Q16 via a quadratic approximation (no trig needed).
        for (int i = 0; i < 512; i = i + 1) {
            int k = i - 256;
            int v = 65536 - (k * k) / 4;
            if (v < 0) { v = 0; }
            window[i] = v / 8;
        }
    }

    // push slides one sample into the FIFO.
    void push(int sample) {
        fifo[fifoPos] = sample;
        fifoPos = (fifoPos + 1) % 512;
    }

    // analyze computes 32 subband values from the current window.
    void analyze() {
        // Windowing: z[i] = fifo[(pos + i) % 512] * window[i], accumulated
        // into 64 partials, then a small matrixing step folds the partials
        // into 32 subbands.
        int[] z = new int[64];
        for (int i = 0; i < 64; i = i + 1) { z[i] = 0; }
        for (int i = 0; i < 512; i = i + 1) {
            int s = fifo[(fifoPos + i) % 512];
            int w = window[i];
            z[i % 64] = z[i % 64] + (s * w >> 16);
        }
        for (int sb = 0; sb < 32; sb = sb + 1) {
            int acc = 0;
            for (int k = 0; k < 64; k = k + 1) {
                // Cheap integer "cosine" table substitute: a triangular
                // basis keeps the loop shape identical to matrixing.
                int phase = ((2 * sb + 1) * k) % 128;
                int c = 64 - phase;
                if (c < 0 - 64) { c = 0 - 128 - c; }
                if (c > 64) { c = 128 - c; }
                acc = acc + z[k] * c;
            }
            subband[sb] = acc >> 6;
        }
    }
}

class Quantizer {
    int[] levels;
    void init() {
        levels = new int[16];
        int step = 1;
        for (int i = 0; i < 16; i = i + 1) {
            levels[i] = step;
            step = step * 2;
        }
    }
    // quantize maps a value to a 4-bit level index (branchy search).
    int quantize(int v) {
        if (v < 0) { v = 0 - v; }
        int i = 0;
        while (i < 15 && levels[i] < v) { i = i + 1; }
        return i;
    }
}

class Main {
    static void main() {
        FilterBank fb = new FilterBank();
        Quantizer q = new Quantizer();
        Rng rng = new Rng(7777);
        int checksum = 0;
        int bits = 0;
        // Synthetic input: a few mixed "tones" plus noise, all integer.
        int t = 0;
        for (int frame = 0; frame < 24; frame = frame + 1) {
            // 32 new samples per granule, 12 granules per frame.
            for (int g = 0; g < 12; g = g + 1) {
                for (int i = 0; i < 32; i = i + 1) {
                    int tone = ((t * 3) % 200) - 100 + ((t * 7) % 120) - 60;
                    int noise = rng.nextN(41) - 20;
                    fb.push(tone * 40 + noise);
                    t = t + 1;
                }
                fb.analyze();
                for (int sb = 0; sb < 32; sb = sb + 1) {
                    int lvl = q.quantize(fb.subband[sb]);
                    bits = bits + lvl;
                    checksum = (checksum * 17 + fb.subband[sb]) % 1000000007;
                    if (checksum < 0) { checksum = checksum + 1000000007; }
                }
            }
        }
        Sys.printStr("bits=");
        Sys.printlnInt(bits);
        Sys.printStr("checksum=");
        Sys.printlnInt(checksum);
    }
}
`,
	}
}
