package workload

// Compress returns the LZW compression workload: generate compressible
// pseudo-text, LZW-encode it with a chained-hash dictionary, decode the
// code stream, and verify the round trip byte for byte. The control flow —
// tight scan loops with a well-predicted hit/miss branch in the dictionary
// probe — mirrors SPEC _201_compress.
func Compress() Workload {
	return Workload{
		Name:        "compress",
		Description: "LZW round trip over generated text",
		Source: prngSource + `
// LZW dictionary: code -> (prefix code, appended byte), probed through a
// hash table of entry chains.
class Dict {
    int[] prefix;
    int[] suffix;
    int[] hashHead;
    int[] hashNext;
    int size;

    void init(int capacity, int hashSize) {
        prefix = new int[capacity];
        suffix = new int[capacity];
        hashNext = new int[capacity];
        hashHead = new int[hashSize];
        reset();
    }

    void reset() {
        for (int i = 0; i < hashHead.length; i = i + 1) { hashHead[i] = 0 - 1; }
        // Codes 0..255 are the single-byte roots.
        for (int c = 0; c < 256; c = c + 1) {
            prefix[c] = 0 - 1;
            suffix[c] = c;
        }
        size = 256;
    }

    int hashOf(int p, int b) {
        int h = p * 31 + b * 131 + 7;
        int m = h % hashHead.length;
        if (m < 0) { return m + hashHead.length; }
        return m;
    }

    // find returns the code for (prefixCode, byte) or -1.
    int find(int p, int b) {
        int h = hashOf(p, b);
        int e = hashHead[h];
        while (e >= 0) {
            if (prefix[e] == p && suffix[e] == b) { return e; }
            e = hashNext[e];
        }
        return 0 - 1;
    }

    // add inserts a new code; returns false when the table is full.
    boolean add(int p, int b) {
        if (size >= prefix.length) { return false; }
        int e = size;
        size = size + 1;
        prefix[e] = p;
        suffix[e] = b;
        int h = hashOf(p, b);
        hashNext[e] = hashHead[h];
        hashHead[h] = e;
        return true;
    }
}

class Lzw {
    Dict dict;

    void init() { dict = new Dict(8192, 4096); }

    // compress writes codes into out and returns the code count.
    int compress(byte[] data, int[] out) {
        dict.reset();
        int n = 0;
        int cur = data[0];
        for (int i = 1; i < data.length; i = i + 1) {
            int b = data[i];
            int code = dict.find(cur, b);
            if (code >= 0) {
                cur = code;
            } else {
                out[n] = cur;
                n = n + 1;
                if (!dict.add(cur, b)) { dict.reset(); }
                cur = b;
            }
        }
        out[n] = cur;
        return n + 1;
    }

    // expand decodes n codes into out, returning the decoded length.
    int expand(int[] codes, int n, byte[] out) {
        dict.reset();
        int len = 0;
        int prev = 0 - 1;
        byte[] stack = new byte[4096];
        int firstByte = 0;
        for (int i = 0; i < n; i = i + 1) {
            int code = codes[i];
            int top = 0;
            int c = code;
            if (c >= dict.size) {
                // The K-omega case: code not yet in the dictionary.
                stack[top] = firstByte;
                top = top + 1;
                c = prev;
            }
            while (c >= 0) {
                stack[top] = dict.suffix[c];
                top = top + 1;
                c = dict.prefix[c];
            }
            firstByte = stack[top - 1];
            while (top > 0) {
                top = top - 1;
                out[len] = stack[top];
                len = len + 1;
            }
            if (prev >= 0) {
                if (!dict.add(prev, firstByte)) { dict.reset(); prev = 0 - 1; }
            }
            prev = code;
        }
        return len;
    }
}

class Main {
    // makeText fills data with word-like compressible pseudo-text.
    static void makeText(byte[] data, Rng rng) {
        String words = "the quick brown fox jumps over lazy dog trace cache branch correlation virtual machine profile dispatch ";
        byte[] w = Sys.strBytes(words);
        int pos = 0;
        while (pos < data.length) {
            int start = rng.nextN(90);
            int len = 4 + rng.nextN(10);
            for (int i = 0; i < len && pos < data.length; i = i + 1) {
                data[pos] = w[(start + i) % w.length];
                pos = pos + 1;
            }
        }
    }

    static void main() {
        Rng rng = new Rng(20020817);
        Lzw lzw = new Lzw();
        int total = 0;
        int codesTotal = 0;
        int ok = 1;
        byte[] data = new byte[16384];
        int[] codes = new int[16384];
        byte[] back = new byte[17408];
        for (int round = 0; round < 6; round = round + 1) {
            makeText(data, rng);
            int n = lzw.compress(data, codes);
            codesTotal = codesTotal + n;
            int m = lzw.expand(codes, n, back);
            if (m != data.length) { ok = 0; }
            for (int i = 0; i < data.length; i = i + 1) {
                if (back[i] != data[i]) { ok = 0; }
            }
            int sum = 0;
            for (int i = 0; i < n; i = i + 1) {
                sum = (sum * 33 + codes[i]) % 1000000007;
                if (sum < 0) { sum = sum + 1000000007; }
            }
            total = (total + sum) % 1000000007;
        }
        Sys.printStr("roundtrip=");
        Sys.printlnInt(ok);
        Sys.printStr("codes=");
        Sys.printlnInt(codesTotal);
        Sys.printStr("checksum=");
        Sys.printlnInt(total);
    }
}
`,
	}
}
