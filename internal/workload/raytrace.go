package workload

// Raytrace returns the ray tracer workload: a small scene of spheres and a
// ground plane rendered with Lambertian shading, hard shadows and one
// reflective bounce. Intersection goes through virtual Shape methods, so
// the inner loop is float-heavy and polymorphic like SPEC _205_raytrace.
func Raytrace() Workload {
	return Workload{
		Name:        "raytrace",
		Description: "sphere/plane ray tracer with virtual dispatch",
		Source: `
class Vec {
    float x; float y; float z;
    void init(float ax, float ay, float az) { x = ax; y = ay; z = az; }
    void set(float ax, float ay, float az) { x = ax; y = ay; z = az; }
    float dot(Vec o) { return x * o.x + y * o.y + z * o.z; }
    void addScaled(Vec o, float s) { x = x + o.x * s; y = y + o.y * s; z = z + o.z * s; }
    void copyFrom(Vec o) { x = o.x; y = o.y; z = o.z; }
    void normalize() {
        float n = Sys.sqrt(x * x + y * y + z * z);
        if (n > 0.0000001) { x = x / n; y = y / n; z = z / n; }
    }
}

// Shape is the polymorphic scene element.
class Shape {
    float reflect;
    float shade;
    // intersect returns the ray parameter t, or -1 when missed.
    float intersect(Vec orig, Vec dir) { return 0.0 - 1.0; }
    // normalAt fills n with the surface normal at point p.
    void normalAt(Vec p, Vec n) { n.set(0.0, 1.0, 0.0); }
}

class Sphere extends Shape {
    Vec center;
    float radius;
    void init(float cx, float cy, float cz, float r, float refl, float sh) {
        center = new Vec(cx, cy, cz);
        radius = r;
        reflect = refl;
        shade = sh;
    }
    float intersect(Vec orig, Vec dir) {
        float ox = orig.x - center.x;
        float oy = orig.y - center.y;
        float oz = orig.z - center.z;
        float b = ox * dir.x + oy * dir.y + oz * dir.z;
        float c = ox * ox + oy * oy + oz * oz - radius * radius;
        float disc = b * b - c;
        if (disc < 0.0) { return 0.0 - 1.0; }
        float sq = Sys.sqrt(disc);
        float t = 0.0 - b - sq;
        if (t > 0.001) { return t; }
        t = 0.0 - b + sq;
        if (t > 0.001) { return t; }
        return 0.0 - 1.0;
    }
    void normalAt(Vec p, Vec n) {
        n.set((p.x - center.x) / radius, (p.y - center.y) / radius, (p.z - center.z) / radius);
    }
}

class Plane extends Shape {
    float height;
    void init(float y, float refl, float sh) { height = y; reflect = refl; shade = sh; }
    float intersect(Vec orig, Vec dir) {
        if (dir.y > 0.0 - 0.0001 && dir.y < 0.0001) { return 0.0 - 1.0; }
        float t = (height - orig.y) / dir.y;
        if (t > 0.001) { return t; }
        return 0.0 - 1.0;
    }
    void normalAt(Vec p, Vec n) { n.set(0.0, 1.0, 0.0); }
}

class Scene {
    // The hot intersection loop iterates a homogeneous sphere array (as a
    // tuned ray tracer stores primitives), so its virtual call site is
    // monomorphic; the plane and the shading path stay polymorphic.
    Sphere[] spheres;
    Shape ground;
    Vec light;
    Vec hitPoint;
    Vec normal;
    Vec toLight;
    Vec shadowDir;

    void init() {
        spheres = new Sphere[4];
        spheres[0] = new Sphere(0.0, 0.0, 0.0 - 6.0, 1.5, 0.5, 0.9);
        spheres[1] = new Sphere(2.2, 0.0 - 1.0, 0.0 - 5.0, 0.8, 0.2, 0.7);
        spheres[2] = new Sphere(0.0 - 2.5, 0.5, 0.0 - 7.0, 1.2, 0.7, 0.5);
        spheres[3] = new Sphere(0.8, 1.6, 0.0 - 4.5, 0.5, 0.1, 0.8);
        ground = new Plane(0.0 - 2.0, 0.3, 0.6);
        light = new Vec(5.0, 8.0, 0.0);
        hitPoint = new Vec(0.0, 0.0, 0.0);
        normal = new Vec(0.0, 0.0, 0.0);
        toLight = new Vec(0.0, 0.0, 0.0);
        shadowDir = new Vec(0.0, 0.0, 0.0);
    }

    // closest returns the nearest hit shape, or null; the hit parameter is
    // left in lastT.
    float lastT;
    Shape closest(Vec orig, Vec dir) {
        Shape best = null;
        float bestT = 1000000.0;
        for (int i = 0; i < spheres.length; i = i + 1) {
            float t = spheres[i].intersect(orig, dir);
            if (t > 0.0 && t < bestT) { bestT = t; best = spheres[i]; }
        }
        float tg = ground.intersect(orig, dir);
        if (tg > 0.0 && tg < bestT) { bestT = tg; best = ground; }
        lastT = bestT;
        return best;
    }

    // inShadow tests the light ray from hitPoint.
    boolean inShadow() {
        shadowDir.copyFrom(toLight);
        for (int i = 0; i < spheres.length; i = i + 1) {
            float t = spheres[i].intersect(hitPoint, shadowDir);
            if (t > 0.0) { return true; }
        }
        return false;
    }

    // trace returns the brightness of a ray with up to depth reflective
    // bounces.
    float trace(Vec orig, Vec dir, int depth) {
        Shape s = closest(orig, dir);
        if (s == null) { return 0.1; }
        float t = lastT;
        hitPoint.copyFrom(orig);
        hitPoint.addScaled(dir, t);
        s.normalAt(hitPoint, normal);
        toLight.set(light.x - hitPoint.x, light.y - hitPoint.y, light.z - hitPoint.z);
        toLight.normalize();
        float lambert = normal.dot(toLight);
        if (lambert < 0.0) { lambert = 0.0; }
        if (lambert > 0.0 && inShadow()) { lambert = 0.0; }
        float color = 0.08 + s.shade * lambert;
        if (depth > 0 && s.reflect > 0.01) {
            float d = dir.dot(normal);
            Vec rdir = new Vec(dir.x - 2.0 * d * normal.x,
                               dir.y - 2.0 * d * normal.y,
                               dir.z - 2.0 * d * normal.z);
            Vec rorig = new Vec(hitPoint.x, hitPoint.y, hitPoint.z);
            color = color + s.reflect * trace(rorig, rdir, depth - 1);
        }
        if (color > 1.0) { color = 1.0; }
        return color;
    }
}

class Main {
    static void main() {
        Scene scene = new Scene();
        int w = 64;
        int h = 48;
        Vec eye = new Vec(0.0, 0.5, 2.0);
        Vec dir = new Vec(0.0, 0.0, 0.0);
        int checksum = 0;
        int lit = 0;
        for (int y = 0; y < h; y = y + 1) {
            for (int x = 0; x < w; x = x + 1) {
                float fx = (Sys.toFloat(x) - Sys.toFloat(w) / 2.0) / Sys.toFloat(w);
                float fy = (Sys.toFloat(h) / 2.0 - Sys.toFloat(y)) / Sys.toFloat(h);
                dir.set(fx, fy, 0.0 - 1.0);
                dir.normalize();
                float c = scene.trace(eye, dir, 2);
                int pix = Sys.toInt(c * 255.0);
                if (pix > 64) { lit = lit + 1; }
                checksum = (checksum * 131 + pix) % 1000000007;
                if (checksum < 0) { checksum = checksum + 1000000007; }
            }
        }
        Sys.printStr("lit=");
        Sys.printlnInt(lit);
        Sys.printStr("checksum=");
        Sys.printlnInt(checksum);
    }
}
`,
	}
}
