package workload

// Soot returns the program-analysis workload: build random control-flow
// graphs of polymorphic statement nodes, then run an iterative worklist
// reaching-definitions analysis with 64-bit bitsets to a fixpoint. The
// pointer chasing, virtual transfer functions, and data-dependent worklist
// order model a bytecode analysis framework like Soot.
func Soot() Workload {
	return Workload{
		Name:        "soot",
		Description: "worklist dataflow analysis over random CFGs",
		Source: prngSource + `
// Stmt is the polymorphic CFG node. gen/kill are bit indexes over 64
// definitions; transfer applies out = gen | (in & ~kill).
class Stmt {
    int id;
    int genBits;
    int killBits;
    int in;
    int out;
    int nsucc;
    int[] succ;
    int npred;
    int[] pred;

    void initNode(int nodeId) {
        id = nodeId;
        succ = new int[4];
        pred = new int[8];
    }
    // kindTag distinguishes node classes (virtual, overridden below).
    int kindTag() { return 0; }
    // transfer returns true when out changed.
    boolean transfer() {
        int newOut = genBits | (in & (0 - 1 - killBits));
        if (newOut != out) { out = newOut; return true; }
        return false;
    }
}

// AssignStmt defines one variable and kills its other definitions.
class AssignStmt extends Stmt {
    int kindTag() { return 1; }
}

// CallStmt defines several variables (call side effects).
class CallStmt extends Stmt {
    int kindTag() { return 2; }
    boolean transfer() {
        // Calls additionally smear their gen set: a coarse side-effect
        // model that makes the transfer function genuinely different.
        int newOut = (genBits | (genBits << 1)) | (in & (0 - 1 - killBits));
        if (newOut != out) { out = newOut; return true; }
        return false;
    }
}

// BranchStmt defines nothing.
class BranchStmt extends Stmt {
    int kindTag() { return 3; }
    boolean transfer() {
        if (in != out) { out = in; return true; }
        return false;
    }
}

class Graph {
    Stmt[] nodes;
    int n;

    // build constructs a random CFG: mostly linear with forward/back edges.
    void build(int size, Rng rng) {
        n = size;
        nodes = new Stmt[size];
        for (int i = 0; i < size; i = i + 1) {
            int k = rng.nextN(10);
            Stmt s;
            if (k < 5) { s = new AssignStmt(); }
            else if (k < 7) { s = new CallStmt(); }
            else { s = new BranchStmt(); }
            s.initNode(i);
            int d = rng.nextN(64);
            if (s.kindTag() == 1) {
                s.genBits = 1 << d;
                s.killBits = (1 << d) | (1 << ((d + 32) % 64));
            }
            if (s.kindTag() == 2) {
                s.genBits = (1 << d) | (1 << ((d + 7) % 63));
                s.killBits = 1 << ((d + 3) % 64);
            }
            nodes[i] = s;
        }
        // Edges: fallthrough plus random jumps.
        for (int i = 0; i < size; i = i + 1) {
            Stmt s = nodes[i];
            if (i + 1 < size) { addEdge(i, i + 1); }
            if (s.kindTag() == 3) {
                int tgt = rng.nextN(size);
                addEdge(i, tgt);
                if (rng.nextN(4) == 0) { addEdge(i, rng.nextN(size)); }
            }
        }
    }

    void addEdge(int from, int to) {
        Stmt f = nodes[from];
        Stmt t = nodes[to];
        if (f.nsucc < f.succ.length && t.npred < t.pred.length) {
            f.succ[f.nsucc] = to;
            f.nsucc = f.nsucc + 1;
            t.pred[t.npred] = from;
            t.npred = t.npred + 1;
        }
    }

    // solve runs the worklist algorithm and returns the iteration count.
    int solve() {
        int[] work = new int[n * 8];
        boolean[] inWork = new boolean[n];
        int head = 0;
        int tail = 0;
        for (int i = 0; i < n; i = i + 1) {
            work[tail] = i;
            tail = tail + 1;
            inWork[i] = true;
        }
        int iters = 0;
        while (head != tail) {
            int id = work[head];
            head = (head + 1) % work.length;
            inWork[id] = false;
            Stmt s = nodes[id];
            // Meet: union of predecessor outs.
            int meet = 0;
            for (int p = 0; p < s.npred; p = p + 1) {
                meet = meet | nodes[s.pred[p]].out;
            }
            s.in = meet;
            iters = iters + 1;
            if (s.transfer()) {
                for (int q = 0; q < s.nsucc; q = q + 1) {
                    int t = s.succ[q];
                    if (!inWork[t]) {
                        work[tail] = t;
                        tail = (tail + 1) % work.length;
                        inWork[t] = true;
                    }
                }
            }
        }
        return iters;
    }

    int fingerprint() {
        int h = 0;
        for (int i = 0; i < n; i = i + 1) {
            h = (h * 37 + nodes[i].out) % 1000000007;
            if (h < 0) { h = h + 1000000007; }
        }
        return h;
    }
}

class Main {
    static void main() {
        Rng rng = new Rng(31337);
        int totalIters = 0;
        int checksum = 0;
        for (int g = 0; g < 40; g = g + 1) {
            Graph graph = new Graph();
            graph.build(60 + rng.nextN(80), rng);
            totalIters = totalIters + graph.solve();
            checksum = (checksum * 41 + graph.fingerprint()) % 1000000007;
            if (checksum < 0) { checksum = checksum + 1000000007; }
        }
        Sys.printStr("iters=");
        Sys.printlnInt(totalIters);
        Sys.printStr("checksum=");
        Sys.printlnInt(checksum);
    }
}
`,
	}
}
