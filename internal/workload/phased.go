package workload

// Phased returns a synthetic phase-change program used by the cache
// stability experiment (§3.6 of the paper): the same code is executed in
// successive phases whose hot paths differ, so a selector either adapts its
// trace set precisely (the BCG's informed maintenance) or churns (Dynamo's
// flush-on-rapid-creation). It is not part of the paper's six-benchmark
// suite and is excluded from All().
func Phased() Workload {
	return Workload{
		Name:        "phased",
		Description: "phase-change program for the cache stability experiment",
		Source: prngSource + `
class Main {
    // work has many distinct sub-paths; which ones are hot depends on mode,
    // so every phase change re-biases a large set of branches at once.
    static int work(int mode, int i, int acc) {
        int sel = i & 7;
        if (mode == 0) {
            if (sel < 4) { acc = acc + i % 3; }
            else { acc = acc ^ (i << 1); }
            if (acc > 1000000) { acc = acc % 999983; }
        } else if (mode == 1) {
            if (sel == 0) { acc = acc - i % 5; }
            else if (sel == 1) { acc = acc + (i >> 2); }
            else { acc = acc ^ i; }
            if (acc < 0 - 1000000) { acc = 0 - ((0 - acc) % 999983); }
        } else {
            if ((i & 1) == 0) { acc = acc * 3 % 65521; }
            else { acc = acc + 7; }
        }
        return acc;
    }

    static void main() {
        int acc = 1;
        for (int phase = 0; phase < 9; phase = phase + 1) {
            int mode = phase % 3;
            for (int i = 0; i < 120000; i = i + 1) {
                acc = work(mode, i, acc);
            }
        }
        Sys.printStr("acc=");
        Sys.printlnInt(acc);
    }
}
`,
	}
}
