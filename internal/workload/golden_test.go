package workload_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// golden freezes each workload's complete output. The programs are
// deterministic (seeded PRNG, integer checksums, quantized float results),
// so any change here means a semantic change somewhere in the pipeline —
// compiler, linker, interpreter, or the workload source itself — and must
// be deliberate.
var golden = map[string]string{
	"compress":  "roundtrip=1\ncodes=17182\nchecksum=692506413\n",
	"javac":     "stmts=1920\nfolded=152\nerrors=0\nchecksum=194820006\n",
	"raytrace":  "lit=1273\nchecksum=737307344\n",
	"mpegaudio": "bits=108553\nchecksum=533937017\n",
	"soot":      "iters=16442\nchecksum=138015871\n",
	"scimark":   "fft=-3728\nsor=1144839\nmc=3134\nsparse=1211245\nlu=1029628\n",
}

func TestGoldenOutputs(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			want, ok := golden[w.Name]
			if !ok {
				t.Fatalf("no golden output recorded for %s", w.Name)
			}
			got, _ := runMode(t, w, core.ModePlain)
			if got != want {
				t.Errorf("output changed:\ngot:  %q\nwant: %q", got, want)
			}
		})
	}
}
