package workload

// Javac returns the compiler-front-end workload: generate random arithmetic
// sources, then repeatedly tokenize, parse (recursive descent with operator
// precedence), constant-fold, and evaluate them. Data-dependent branching
// in the scanner and the parser's many small decision points make this the
// least predictable workload, playing the role of SPEC _213_javac.
func Javac() Workload {
	return Workload{
		Name:        "javac",
		Description: "lexer + recursive-descent parser + evaluator over generated sources",
		Source: prngSource + `
// ParseError is thrown on malformed input. The generator only emits valid
// programs, so these are the classic never-taken exception edges the paper
// notes traces exclude ("a large number of branches which are never taken,
// eg exceptions").
class ParseError {
    int pos;
    void init(int p) { pos = p; }
}

// Token kinds.
//   0 eof, 1 int, 2 ident, 3 +, 4 -, 5 *, 6 /, 7 (, 8 ), 9 =, 10 ;
class Lexer {
    byte[] src;
    int pos;
    int kind;
    int val;        // int literal value
    int identId;    // small ident index ('a'..'z')

    void init(byte[] source) { src = source; pos = 0; }

    void advance() {
        while (pos < src.length && src[pos] == 32) { pos = pos + 1; }
        if (pos >= src.length) { kind = 0; return; }
        int c = src[pos];
        if (c >= 48 && c <= 57) {
            int v = 0;
            while (pos < src.length && src[pos] >= 48 && src[pos] <= 57) {
                v = v * 10 + (src[pos] - 48);
                pos = pos + 1;
            }
            kind = 1; val = v; return;
        }
        if (c >= 97 && c <= 122) {
            identId = c - 97;
            pos = pos + 1;
            kind = 2; return;
        }
        pos = pos + 1;
        switch (c) {
        case 43: kind = 3;
            break;
        case 45: kind = 4;
            break;
        case 42: kind = 5;
            break;
        case 47: kind = 6;
            break;
        case 40: kind = 7;
            break;
        case 41: kind = 8;
            break;
        case 61: kind = 9;
            break;
        case 59: kind = 10;
            break;
        default: kind = 0;
        }
    }
}

// AST: polymorphic nodes with virtual eval/fold, exercising invokevirtual
// on a class hierarchy the way javac's tree visitors do.
class Node {
    int eval(int[] env) { return 0; }
    // fold returns a constant-folded replacement (possibly this).
    Node fold() { return this; }
    boolean isConst() { return false; }
    int constVal() { return 0; }
}
class Num extends Node {
    int v;
    void init(int value) { v = value; }
    int eval(int[] env) { return v; }
    boolean isConst() { return true; }
    int constVal() { return v; }
}
class Var extends Node {
    int id;
    void init(int ident) { id = ident; }
    int eval(int[] env) { return env[id]; }
}
class Bin extends Node {
    int op; // 3 + | 4 - | 5 * | 6 /
    Node l; Node r;
    void init(int o, Node a, Node b) { op = o; l = a; r = b; }
    int apply(int a, int b) {
        if (op == 3) { return a + b; }
        if (op == 4) { return a - b; }
        if (op == 5) { return a * b; }
        if (b == 0) { return 0; }
        return a / b;
    }
    int eval(int[] env) { return apply(l.eval(env), r.eval(env)); }
    Node fold() {
        l = l.fold();
        r = r.fold();
        if (l.isConst() && r.isConst()) {
            Num n = new Num(apply(l.constVal(), r.constVal()));
            return n;
        }
        return this;
    }
}
class Assign extends Node {
    int id;
    Node rhs;
    void init(int ident, Node r) { id = ident; rhs = r; }
    int eval(int[] env) {
        int v = rhs.eval(env);
        env[id] = v;
        return v;
    }
    Node fold() { rhs = rhs.fold(); return this; }
}

// Recursive-descent parser:
//   stmt := ident '=' expr ';' | expr ';'
//   expr := term (('+'|'-') term)*
//   term := factor (('*'|'/') factor)*
//   factor := int | ident | '(' expr ')' | '-' factor
class Parser {
    Lexer lex;

    void init(Lexer l) { lex = l; lex.advance(); }

    Node stmt() {
        if (lex.kind == 2) {
            int id = lex.identId;
            int save = lex.pos;
            lex.advance();
            if (lex.kind == 9) {
                lex.advance();
                Node rhs = expr();
                if (lex.kind == 10) { lex.advance(); }
                Assign a = new Assign(id, rhs);
                return a;
            }
            // Not an assignment: rewind is awkward, so treat the ident as
            // the start of an expression term.
            Node v = new Var(id);
            Node e = exprRest(termRest(v));
            if (lex.kind == 10) { lex.advance(); }
            int unused = save;
            return e;
        }
        Node e = expr();
        if (lex.kind == 10) { lex.advance(); }
        return e;
    }

    Node expr() { return exprRest(term()); }

    Node exprRest(Node left) {
        while (lex.kind == 3 || lex.kind == 4) {
            int op = lex.kind;
            lex.advance();
            Node right = term();
            Bin b = new Bin(op, left, right);
            left = b;
        }
        return left;
    }

    Node term() { return termRest(factor()); }

    Node termRest(Node left) {
        while (lex.kind == 5 || lex.kind == 6) {
            int op = lex.kind;
            lex.advance();
            Node right = factor();
            Bin b = new Bin(op, left, right);
            left = b;
        }
        return left;
    }

    Node factor() {
        if (lex.kind == 1) {
            Num n = new Num(lex.val);
            lex.advance();
            return n;
        }
        if (lex.kind == 2) {
            Var v = new Var(lex.identId);
            lex.advance();
            return v;
        }
        if (lex.kind == 7) {
            lex.advance();
            Node e = expr();
            if (lex.kind == 8) { lex.advance(); }
            return e;
        }
        if (lex.kind == 4) {
            lex.advance();
            Num zero = new Num(0);
            Bin b = new Bin(4, zero, factor());
            return b;
        }
        throw new ParseError(lex.pos);
    }
}

class Gen {
    Rng rng;
    byte[] buf;
    int pos;

    void init(int seed) { rng = new Rng(seed); buf = new byte[65536]; }

    void emit(int c) { buf[pos] = c; pos = pos + 1; }

    void emitInt(int v) {
        if (v >= 10) { emitInt(v / 10); }
        emit(48 + v % 10);
    }

    // expr emits a random expression of bounded depth.
    void expr(int depth) {
        int pick = rng.nextN(10);
        if (depth <= 0 || pick < 3) {
            if (rng.nextN(2) == 0) { emitInt(rng.nextN(1000)); }
            else { emit(97 + rng.nextN(26)); }
            return;
        }
        if (pick < 5) {
            emit(40);
            expr(depth - 1);
            emit(41);
            return;
        }
        expr(depth - 1);
        int op = rng.nextN(4);
        if (op == 0) { emit(43); }
        if (op == 1) { emit(45); }
        if (op == 2) { emit(42); }
        if (op == 3) { emit(47); }
        expr(depth - 1);
    }

    // program emits n statements and returns the used buffer length.
    int program(int n) {
        pos = 0;
        for (int i = 0; i < n; i = i + 1) {
            if (rng.nextN(3) > 0) {
                emit(97 + rng.nextN(26));
                emit(61);
            }
            expr(4);
            emit(59);
            emit(32);
        }
        return pos;
    }
}

class Main {
    static void main() {
        Gen gen = new Gen(42);
        int[] env = new int[26];
        int checksum = 0;
        int folded = 0;
        int stmts = 0;
        int errors = 0;
        for (int round = 0; round < 12; round = round + 1) {
            int len = gen.program(160);
            byte[] src = new byte[len];
            for (int i = 0; i < len; i = i + 1) { src[i] = gen.buf[i]; }
            Lexer lex = new Lexer(src);
            Parser p = new Parser(lex);
            int bad = 0;
            while (lex.kind != 0) {
                try {
                    Node n = p.stmt();
                    Node f = n.fold();
                    if (f.isConst()) { folded = folded + 1; }
                    int v = f.eval(env);
                    stmts = stmts + 1;
                    checksum = (checksum * 31 + v) % 1000000007;
                    if (checksum < 0) { checksum = checksum + 1000000007; }
                } catch (ParseError err) {
                    bad = bad + 1;
                    lex.advance();
                }
            }
            errors = errors + bad;
        }
        Sys.printStr("stmts=");
        Sys.printlnInt(stmts);
        Sys.printStr("folded=");
        Sys.printlnInt(folded);
        Sys.printStr("errors=");
        Sys.printlnInt(errors);
        Sys.printStr("checksum=");
        Sys.printlnInt(checksum);
    }
}
`,
	}
}
