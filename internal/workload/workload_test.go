package workload_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// runMode executes a workload under the given mode and returns its output.
func runMode(t *testing.T, w workload.Workload, mode core.Mode) (string, *core.Session) {
	t.Helper()
	prog, pcfg, err := w.Compile()
	if err != nil {
		t.Fatalf("compile %s: %v", w.Name, err)
	}
	var out bytes.Buffer
	s, err := core.NewSession(prog, pcfg, core.SessionOptions{
		Mode:     mode,
		Out:      &out,
		MaxSteps: 2_000_000_000,
	})
	if err != nil {
		t.Fatalf("session %s: %v", w.Name, err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run %s (%s): %v\noutput: %s", w.Name, mode, err, out.String())
	}
	return out.String(), s
}

func TestWorkloadsRunAndAgreeAcrossModes(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			plain, ps := runMode(t, w, core.ModePlain)
			if !strings.Contains(plain, "checksum=") && !strings.Contains(plain, "lu=") {
				t.Fatalf("%s output has no checksum: %q", w.Name, plain)
			}
			traced, ts := runMode(t, w, core.ModeTrace)
			if traced != plain {
				t.Errorf("%s: trace mode changed output:\nplain: %q\ntrace: %q", w.Name, plain, traced)
			}
			deploy, _ := runMode(t, w, core.ModeTraceDeploy)
			if deploy != plain {
				t.Errorf("%s: deploy mode changed output:\nplain: %q\ndeploy: %q", w.Name, plain, deploy)
			}
			if ps.Counters.Instrs != ts.Counters.Instrs {
				t.Errorf("%s: instruction counts differ between plain (%d) and trace (%d) modes",
					w.Name, ps.Counters.Instrs, ts.Counters.Instrs)
			}
			t.Logf("%s: %d instrs, %d dispatches, plain output:\n%s",
				w.Name, ps.Counters.Instrs, ps.Counters.BlockDispatches, plain)
			t.Logf("%s trace counters: %s", w.Name, ts.Counters)
		})
	}
}

func TestCompressRoundTripSucceeds(t *testing.T) {
	w, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	out, _ := runMode(t, w, core.ModePlain)
	if !strings.Contains(out, "roundtrip=1\n") {
		t.Errorf("compress round trip failed: %s", out)
	}
}

func TestScimarkMonteCarloNearPi(t *testing.T) {
	w, err := workload.ByName("scimark")
	if err != nil {
		t.Fatal(err)
	}
	out, _ := runMode(t, w, core.ModePlain)
	// mc= is pi*1000 quantized; accept a loose band.
	var mc int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "mc=") {
			if _, err := fmtSscanf(line, &mc); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
		}
	}
	if mc < 3000 || mc > 3300 {
		t.Errorf("Monte Carlo pi estimate %d/1000 out of range", mc)
	}
}

func fmtSscanf(line string, mc *int) (int, error) {
	var n int
	for _, c := range line[3:] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	*mc = n
	return n, nil
}

func TestByNameUnknown(t *testing.T) {
	if _, err := workload.ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
	if len(workload.Names()) != 6 {
		t.Errorf("expected 6 workloads, got %v", workload.Names())
	}
}
