// Benchmarks regenerating the paper's evaluation, one per table/figure.
// Each benchmark runs a workload under the relevant configuration and
// reports the paper's dependent values via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the same series the tables contain (cmd/tracebench renders them as
// the formatted tables themselves).
package repro_test

import (
	"testing"

	"repro"
	"repro/internal/analysis/valueflow"
	"repro/internal/baseline"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

// compiledCache avoids recompiling workloads across benchmark iterations.
var compiledCache = map[string]*benchProg{}

type benchProg struct {
	prog  *repro.Program
	cfg   *cfg.ProgramCFG
	facts *valueflow.Facts
}

func compiled(b *testing.B, name string) *benchProg {
	b.Helper()
	if c, ok := compiledCache[name]; ok {
		return c
	}
	w, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	prog, pcfg, err := w.Compile()
	if err != nil {
		b.Fatal(err)
	}
	c := &benchProg{prog: prog, cfg: pcfg, facts: valueflow.Compute(pcfg)}
	compiledCache[name] = c
	return c
}

func runSession(b *testing.B, c *benchProg, mode core.Mode, params profile.Params) *core.Session {
	b.Helper()
	s, err := core.NewSession(c.prog, c.cfg, core.SessionOptions{Mode: mode, Params: params})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkDispatchGranularity regenerates the Figure 1/2 contrast: the
// dispatch count at instruction, basic-block, and trace granularity.
func BenchmarkDispatchGranularity(b *testing.B) {
	for _, name := range workload.Names() {
		b.Run(name, func(b *testing.B) {
			c := compiled(b, name)
			var instr, blocks, traces int64
			for i := 0; i < b.N; i++ {
				s := runSession(b, c, core.ModeTrace, profile.DefaultParams())
				instr = s.Counters.Instrs
				blocks = s.Counters.BlockDispatches
				traces = s.Counters.TraceDispatches
			}
			b.ReportMetric(float64(instr), "instr-dispatches")
			b.ReportMetric(float64(blocks), "block-dispatches")
			b.ReportMetric(float64(traces), "trace-dispatches")
		})
	}
}

// BenchmarkTableI reports the average completed-trace length per threshold.
func BenchmarkTableI(b *testing.B) {
	benchThresholdSweep(b, func(m stats.Metrics) (float64, string) {
		return m.AvgTraceLength, "blocks/trace"
	})
}

// BenchmarkTableII reports instruction stream coverage per threshold.
func BenchmarkTableII(b *testing.B) {
	benchThresholdSweep(b, func(m stats.Metrics) (float64, string) {
		return m.Coverage * 100, "coverage-%"
	})
}

// BenchmarkTableIII reports the dynamic trace completion rate per threshold.
func BenchmarkTableIII(b *testing.B) {
	benchThresholdSweep(b, func(m stats.Metrics) (float64, string) {
		return m.CompletionRate * 100, "completion-%"
	})
}

// BenchmarkTableIV reports thousands of dispatches per state-change signal.
func BenchmarkTableIV(b *testing.B) {
	benchThresholdSweep(b, func(m stats.Metrics) (float64, string) {
		return m.DispatchesPerSignal / 1000, "kdispatch/signal"
	})
}

func benchThresholdSweep(b *testing.B, metric func(stats.Metrics) (float64, string)) {
	for _, name := range workload.Names() {
		for _, th := range []float64{1.00, 0.99, 0.98, 0.97, 0.95} {
			b.Run(name+"/th="+thLabel(th), func(b *testing.B) {
				c := compiled(b, name)
				params := profile.Params{StartDelay: 64, Threshold: th, DecayInterval: 256}
				var v float64
				var unit string
				for i := 0; i < b.N; i++ {
					s := runSession(b, c, core.ModeTrace, params)
					v, unit = metric(s.Metrics())
				}
				b.ReportMetric(v, unit)
			})
		}
	}
}

func thLabel(th float64) string {
	switch th {
	case 1.00:
		return "100"
	case 0.99:
		return "99"
	case 0.98:
		return "98"
	case 0.97:
		return "97"
	default:
		return "95"
	}
}

// BenchmarkTableV reports thousands of dispatches per trace event across
// start-state delays at the 97% threshold.
func BenchmarkTableV(b *testing.B) {
	for _, name := range workload.Names() {
		for _, delay := range []int32{1, 64, 4096} {
			b.Run(name+"/delay="+delayLabel(delay), func(b *testing.B) {
				c := compiled(b, name)
				params := profile.Params{StartDelay: delay, Threshold: 0.97, DecayInterval: 256}
				var v float64
				for i := 0; i < b.N; i++ {
					s := runSession(b, c, core.ModeTrace, params)
					v = s.Metrics().TraceEventInterval / 1000
				}
				b.ReportMetric(v, "kdispatch/event")
			})
		}
	}
}

func delayLabel(d int32) string {
	switch d {
	case 1:
		return "1"
	case 64:
		return "64"
	default:
		return "4096"
	}
}

// BenchmarkTableVI times the interpreter without and with the profiler —
// the wall-clock measurement behind the paper's per-dispatch overhead.
func BenchmarkTableVI(b *testing.B) {
	for _, name := range workload.Names() {
		c := compiled(b, name)
		b.Run(name+"/plain", func(b *testing.B) {
			var dispatches int64
			for i := 0; i < b.N; i++ {
				s := runSession(b, c, core.ModePlain, profile.DefaultParams())
				dispatches = s.Counters.BlockDispatches
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(dispatches), "ns/dispatch")
		})
		b.Run(name+"/profiled", func(b *testing.B) {
			var dispatches int64
			for i := 0; i < b.N; i++ {
				s := runSession(b, c, core.ModeProfile, profile.DefaultParams())
				dispatches = s.Counters.BlockDispatches
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(dispatches), "ns/dispatch")
		})
	}
}

// BenchmarkTableVII times the full trace-dispatching VM in deployment mode
// (one profiler hook per trace dispatch), the configuration whose overhead
// Table VII projects.
func BenchmarkTableVII(b *testing.B) {
	for _, name := range workload.Names() {
		b.Run(name, func(b *testing.B) {
			c := compiled(b, name)
			var traceDisp, profiled int64
			for i := 0; i < b.N; i++ {
				s := runSession(b, c, core.ModeTraceDeploy, profile.DefaultParams())
				traceDisp = s.Counters.TraceDispatches
				profiled = s.Counters.ProfiledDispatches
			}
			b.ReportMetric(float64(traceDisp)/1e6, "Mtrace-dispatches")
			b.ReportMetric(float64(profiled)/1e6, "Mprofiled-dispatches")
		})
	}
}

// BenchmarkTraceThroughput times in-trace execution at both tiers: the
// tier-1 block-by-block trace walk against the tier-2 superinstruction
// forms compiled from the same traces. The reported metric is nanoseconds
// per block executed inside traces — runCompiled mirrors runTrace
// counter-for-counter, so both tiers share the denominator and the delta is
// the compiled form's per-trace-block saving. This is the regression
// benchmark behind the tier rules of harness.CompareBenchReports.
func BenchmarkTraceThroughput(b *testing.B) {
	tiers := []struct {
		label  string
		config core.Config
	}{
		{"tier1", core.Config{}},
		{"tier2", core.Config{CompileTraces: true, TierUpDispatches: 4}},
	}
	for _, name := range workload.Names() {
		for _, tier := range tiers {
			b.Run(name+"/"+tier.label, func(b *testing.B) {
				c := compiled(b, name)
				var traceBlocks, compiledDisp, traceDisp int64
				for i := 0; i < b.N; i++ {
					s, err := core.NewSession(c.prog, c.cfg, core.SessionOptions{
						Mode:   core.ModeTrace,
						Params: profile.DefaultParams(),
						Config: tier.config,
						Facts:  c.facts,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := s.Run(); err != nil {
						b.Fatal(err)
					}
					traceBlocks = s.Counters.BlocksInTraces
					compiledDisp = s.Counters.CompiledDispatches
					traceDisp = s.Counters.TraceDispatches
				}
				if traceBlocks == 0 {
					b.Fatalf("%s executed no blocks inside traces; ns/trace-block is undefined", name)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(traceBlocks), "ns/trace-block")
				if traceDisp > 0 {
					b.ReportMetric(float64(compiledDisp)/float64(traceDisp)*100, "compiled-share-%")
				}
			})
		}
	}
}

// BenchmarkBaselines measures the comparison selectors on one mid-size
// workload so their cost is visible next to the BCG system.
func BenchmarkBaselines(b *testing.B) {
	c := compiled(b, "soot")
	b.Run("bcg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSession(b, c, core.ModeTrace, profile.DefaultParams())
		}
	})
	b.Run("dynamo-net", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctr := &stats.Counters{}
			d := baseline.NewDynamo(c.cfg, baseline.DefaultDynamoConfig(), ctr)
			m, err := vm.New(c.prog, c.cfg, vm.Options{Hook: d, Traces: d, HookInsideTraces: true, Counters: ctr})
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctr := &stats.Counters{}
			r := baseline.NewReplay(c.cfg, baseline.DefaultReplayConfig(), ctr)
			m, err := vm.New(c.prog, c.cfg, vm.Options{Hook: r, Traces: r, HookInsideTraces: true, Counters: ctr})
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// edgeRecorder captures the dispatch edge stream of a run for replay.
type edgeRecorder struct {
	from, to []cfg.BlockID
}

func (r *edgeRecorder) OnDispatch(from, to cfg.BlockID) {
	r.from = append(r.from, from)
	r.to = append(r.to, to)
}

// BenchmarkProfilerOverhead replays a real workload's dispatch-edge stream
// through a warmed branch correlation graph, isolating the profiler's
// steady-state per-dispatch cost from interpretation. This is the
// regression benchmark for the dense-index/arena BCG: ns/dispatch should
// stay in single digits and allocs/op at zero.
func BenchmarkProfilerOverhead(b *testing.B) {
	c := compiled(b, "compress")
	rec := &edgeRecorder{}
	m, err := vm.New(c.prog, c.cfg, vm.Options{Hook: rec, MaxSteps: 400_000})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Run(); err != nil {
		if t, ok := vm.AsTrap(err); !ok || t.Kind != vm.TrapStepLimit {
			b.Fatal(err)
		}
	}
	if len(rec.from) == 0 {
		b.Fatal("recorded no dispatch edges")
	}

	g, err := profile.New(profile.DefaultParams(), nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	g.Reserve(c.cfg.NumBlocks())
	// Event tracing enabled but idle: the warmed graph signals almost no
	// state transitions, and the ones that fire must be allocation-free
	// too, so allocs/op stays pinned at zero with observability on.
	g.SetSink(obs.NewRing(1024))
	replay := func() {
		g.ResetContext()
		for i := range rec.from {
			g.OnDispatch(rec.from[i], rec.to[i])
		}
	}
	replay() // warm: build the graph's working set once

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(rec.from)), "ns/dispatch")
}

// BenchmarkProfilerHook isolates the per-dispatch cost of the BCG hook's
// inline-cache fast path (the "two comparisons, two pointer evaluations,
// one assignment" of §5.4).
func BenchmarkProfilerHook(b *testing.B) {
	g, err := profile.New(profile.DefaultParams(), nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Warm a small loop so the fast path dominates.
	seq := []cfg.BlockID{1, 2, 3, 4}
	for r := 0; r < 64; r++ {
		for i := 1; i < len(seq); i++ {
			g.OnDispatch(seq[i-1], seq[i])
		}
		g.OnDispatch(seq[len(seq)-1], seq[0])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.OnDispatch(seq[i%4], seq[(i+1)%4])
	}
}

// BenchmarkTraceLookup isolates the engine-side cost of consulting the
// trace cache on a dispatch edge.
func BenchmarkTraceLookup(b *testing.B) {
	src := trace.MapSource{}
	tr := trace.New(0, []cfg.BlockID{2, 3}, 0.97)
	src.Register(1, 2, tr)
	var hit *trace.Trace
	for i := 0; i < b.N; i++ {
		hit = src.Lookup(cfg.BlockID(i%8), cfg.BlockID((i+1)%8))
	}
	_ = hit
}

// BenchmarkTraceLookupIndexed measures the same lookup through the dense
// two-level index the engine's dispatch loop actually uses — the common
// "no trace on this edge" case is one bounds check and a slice load.
func BenchmarkTraceLookupIndexed(b *testing.B) {
	var ix trace.Index
	ix.Reserve(8)
	tr := trace.New(0, []cfg.BlockID{2, 3}, 0.97)
	ix.Set(1, 2, tr)
	var hit *trace.Trace
	for i := 0; i < b.N; i++ {
		hit = ix.Lookup(cfg.BlockID(i%8), cfg.BlockID((i+1)%8))
	}
	_ = hit
}
