// Quickstart: compile a MiniJava program, run it under trace dispatch, and
// inspect what the trace cache learned.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

const src = `
class Main {
    static int collatzLen(int n) {
        int steps = 0;
        while (n != 1) {
            if (n % 2 == 0) { n = n / 2; }
            else { n = 3 * n + 1; }
            steps = steps + 1;
        }
        return steps;
    }
    static void main() {
        int best = 0;
        int bestN = 0;
        for (int n = 1; n <= 20000; n = n + 1) {
            int l = collatzLen(n);
            if (l > best) { best = l; bestN = n; }
        }
        Sys.printStr("longest Collatz chain under 20000: n=");
        Sys.printInt(bestN);
        Sys.printStr(" with ");
        Sys.printInt(best);
        Sys.printlnStr(" steps");
    }
}
`

func main() {
	prog, err := repro.CompileMiniJava(src)
	if err != nil {
		log.Fatal(err)
	}

	vm, err := repro.NewVM(prog,
		repro.WithMode(repro.ModeTrace),
		repro.WithParams(repro.Params{Threshold: 0.97, StartDelay: 64}),
		repro.WithOutput(os.Stdout),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		log.Fatal(err)
	}

	c := vm.Counters()
	m := vm.Metrics()
	fmt.Println()
	fmt.Printf("executed %d bytecode instructions in %d basic-block dispatches\n", c.Instrs, c.BlockDispatches)
	fmt.Printf("trace dispatch needed only %d dispatches (%.1fx fewer)\n",
		c.TraceDispatches, float64(c.BlockDispatches)/float64(c.TraceDispatches))
	fmt.Printf("the trace cache covered %.1f%% of the instruction stream with completed traces\n", m.Coverage*100)
	fmt.Printf("average completed trace: %.1f blocks; completion rate %.2f%%\n",
		m.AvgTraceLength, m.CompletionRate*100)
	fmt.Printf("profiler state-change signals: %d; traces built: %d\n", c.Signals, c.TracesBuilt)

	fmt.Println("\nlive traces:")
	for _, t := range vm.Traces() {
		fmt.Printf("  trace %2d: %2d blocks, expected completion %.3f, entered %7d, completed %7d\n",
			t.ID, t.Blocks, t.ExpectedCompletion, t.Entered, t.Completed)
	}
}
