// Adaptive: demonstrate the decay mechanism adapting the trace cache to a
// phase change. The program runs phase A (one hot path) then switches to
// phase B (the opposite path through the same code). The branch correlation
// graph's exponential decay forgets phase A, the profiler signals the state
// changes, and the cache rebuilds its traces for phase B — the behaviour
// §3.6 of the paper calls informed trace cache maintenance, in contrast to
// Dynamo's full-cache flush.
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
class Main {
    static int work(int mode, int rounds) {
        int acc = 0;
        for (int i = 0; i < rounds; i = i + 1) {
            // The same branch flips its dominant direction with the phase.
            if (mode == 0) {
                acc = acc + i % 7;
                acc = acc ^ (acc << 1);
            } else {
                acc = acc - i % 5;
                acc = acc ^ (acc >> 1);
            }
            if (acc > 1000000) { acc = acc % 999983; }
            if (acc < 0 - 1000000) { acc = 0 - (0 - acc) % 999983; }
        }
        return acc;
    }
    static void main() {
        Sys.printlnInt(work(0, 300000));   // phase A
        Sys.printlnInt(work(1, 300000));   // phase B
    }
}
`

func main() {
	prog, err := repro.CompileMiniJava(src)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := repro.NewVM(prog,
		repro.WithMode(repro.ModeTrace),
		repro.WithParams(repro.Params{Threshold: 0.97, StartDelay: 64}),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		log.Fatal(err)
	}

	c := vm.Counters()
	m := vm.Metrics()
	fmt.Printf("signals: %d (phase changes re-signalled as decay flipped the hot branch)\n", c.Signals)
	fmt.Printf("traces built: %d, retired: %d — the cache rebuilt rather than flushed\n",
		c.TracesBuilt, c.TracesRetired)
	fmt.Printf("coverage across both phases: %.1f%% with %.2f%% completion\n",
		m.Coverage*100, m.CompletionRate*100)

	if c.TracesRetired == 0 {
		fmt.Println("note: no retirement was needed (both phase paths stayed cached)")
	}
	fmt.Println("\nfinal trace cache:")
	for _, t := range vm.Traces() {
		fmt.Printf("  trace %2d: %2d blocks, entered %6d, completed %6d\n",
			t.ID, t.Blocks, t.Entered, t.Completed)
	}
}
