// Baselines: run the soot workload under the three trace/hot-code selectors
// the paper compares against — the branch-correlation-graph system, Dynamo's
// NET scheme, and rePLay-style frame construction — and print their trace
// quality side by side.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/baseline"
	"repro/internal/cfg"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

func main() {
	src, err := repro.WorkloadSource("soot")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := repro.CompileMiniJava(src)
	if err != nil {
		log.Fatal(err)
	}

	// BCG (this paper) through the public API.
	bcgVM, err := repro.NewVM(prog, repro.WithMode(repro.ModeTrace))
	if err != nil {
		log.Fatal(err)
	}
	if err := bcgVM.Run(); err != nil {
		log.Fatal(err)
	}
	bm := bcgVM.Metrics()
	fmt.Printf("%-12s coverage=%5.1f%%  completion=%6.2f%%  avgLen=%4.1f  traces=%d\n",
		"bcg", bm.Coverage*100, bm.CompletionRate*100, bm.AvgTraceLength, len(bcgVM.Traces()))

	// The baselines plug into the same engine through its hook and
	// trace-source interfaces, so the metrics are directly comparable.
	runBaseline(prog, "dynamo-net")
	runBaseline(prog, "replay")

	fmt.Println("\nshape check: the BCG selector should match or beat the baselines on")
	fmt.Println("completion rate at comparable coverage — that is the paper's core claim.")
}

func runBaseline(prog *repro.Program, which string) {
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	ctr := &stats.Counters{}
	var hook vm.DispatchHook
	var src trace.Source
	switch which {
	case "dynamo-net":
		d := baseline.NewDynamo(pcfg, baseline.DefaultDynamoConfig(), ctr)
		hook, src = d, d
	case "replay":
		r := baseline.NewReplay(pcfg, baseline.DefaultReplayConfig(), ctr)
		hook, src = r, r
	}
	m, err := vm.New(prog, pcfg, vm.Options{
		Hook:             hook,
		Traces:           src,
		HookInsideTraces: true,
		Counters:         ctr,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	met := ctr.Derive()
	fmt.Printf("%-12s coverage=%5.1f%%  completion=%6.2f%%  avgLen=%4.1f  built=%d\n",
		which, met.Coverage*100, met.CompletionRate*100, met.AvgTraceLength, ctr.TracesBuilt)
}
