// Compression: run the LZW benchmark workload end to end under every
// dispatch mode and compare what the engine did — the same program, once as
// a plain threaded interpreter, once profiled, and once trace-dispatching.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
)

func main() {
	src, err := repro.WorkloadSource("compress")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := repro.CompileMiniJava(src)
	if err != nil {
		log.Fatal(err)
	}

	modes := []struct {
		name string
		mode repro.Mode
	}{
		{"plain interpreter", repro.ModePlain},
		{"profiled interpreter", repro.ModeProfile},
		{"trace dispatch", repro.ModeTrace},
	}

	var reference string
	for _, m := range modes {
		var out bytes.Buffer
		vm, err := repro.NewVM(prog, repro.WithMode(m.mode), repro.WithOutput(&out))
		if err != nil {
			log.Fatal(err)
		}
		if err := vm.Run(); err != nil {
			log.Fatal(err)
		}
		if reference == "" {
			reference = out.String()
			fmt.Printf("program output:\n%s\n", reference)
		} else if out.String() != reference {
			log.Fatalf("%s changed program output!", m.name)
		}

		c := vm.Counters()
		fmt.Printf("%-22s", m.name)
		fmt.Printf("  instrs=%9d", c.Instrs)
		fmt.Printf("  blockDispatches=%8d", c.BlockDispatches)
		if m.mode == repro.ModeTrace {
			met := vm.Metrics()
			fmt.Printf("  traceDispatches=%7d  coverage=%.1f%%  completion=%.2f%%",
				c.TraceDispatches, met.Coverage*100, met.CompletionRate*100)
		}
		if m.mode == repro.ModeProfile {
			fmt.Printf("  bcgNodes=%5d  signals=%4d", vm.NumBCGNodes(), c.Signals)
		}
		fmt.Println()
	}
	fmt.Println("\nall three modes produced identical output — the trace cache is transparent")
}
