// Granularity: the Figure 1 / Figure 2 / trace-dispatch comparison on one
// program — run the same workload under per-instruction dispatch, threaded
// block dispatch, and trace dispatch, and contrast dispatch counts and wall
// time.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	src, err := repro.WorkloadSource("scimark")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := repro.CompileMiniJava(src)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name       string
		mode       repro.Mode
		dispatches func(*repro.Counters) int64
	}
	rows := []row{
		{"per-instruction (Fig. 1)", repro.ModeInstr, func(c *repro.Counters) int64 { return c.InstrDispatches }},
		{"per-block / threaded (Fig. 2)", repro.ModePlain, func(c *repro.Counters) int64 { return c.BlockDispatches }},
		{"trace dispatch (this paper)", repro.ModeTraceDeploy, func(c *repro.Counters) int64 { return c.TraceDispatches }},
	}

	fmt.Printf("%-32s %15s %12s\n", "engine", "dispatches", "wall")
	var instrBaseline int64
	for _, r := range rows {
		vm, err := repro.NewVM(prog, repro.WithMode(r.mode))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if err := vm.Run(); err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		d := r.dispatches(vm.Counters())
		if instrBaseline == 0 {
			instrBaseline = d
		}
		fmt.Printf("%-32s %15d %12s   (%5.1fx fewer dispatches)\n",
			r.name, d, wall.Round(time.Millisecond), float64(instrBaseline)/float64(d))
	}
	fmt.Println("\neach engine executes the identical instruction stream; only the")
	fmt.Println("dispatch unit changes — instruction, basic block, then trace.")
}
