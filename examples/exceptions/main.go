// Exceptions: demonstrate the paper's observation that exception edges are
// "branches which are never taken" from the trace cache's point of view.
// A hot loop calls a function with an error path that fires rarely (or
// never); the branch correlation graph sees the guard as strongly
// correlated with the non-throwing direction, so traces span it, complete
// at high rates, and the rare unwinding shows up only as side exits.
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
class Overflow { int at; void init(int i) { at = i; } }
class Main {
    static int accumulate(int acc, int i) {
        if (acc > 100000000) { throw new Overflow(i); }  // cold path
        return acc + i % 17;
    }
    static void main() {
        int acc = 0;
        int resets = 0;
        for (int i = 0; i < 400000; i = i + 1) {
            try {
                acc = accumulate(acc, i);
            } catch (Overflow e) {
                resets = resets + 1;
                acc = 0;
            }
        }
        Sys.printStr("resets=");
        Sys.printlnInt(resets);
        Sys.printStr("acc=");
        Sys.printlnInt(acc);
    }
}
`

func main() {
	prog, err := repro.CompileMiniJava(src)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := repro.NewVM(prog, repro.WithMode(repro.ModeTrace))
	if err != nil {
		log.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		log.Fatal(err)
	}

	c := vm.Counters()
	m := vm.Metrics()
	fmt.Printf("instruction stream coverage by completed traces: %.1f%%\n", m.Coverage*100)
	fmt.Printf("trace completion rate: %.3f%% (throwing path never disturbs the hot traces)\n",
		m.CompletionRate*100)
	fmt.Printf("traces entered %d times, completed %d times\n", c.TracesEntered, c.TracesCompleted)

	fmt.Println("\ntraces and their side exits (the exception guard is inside, yet cold):")
	for _, t := range vm.Traces() {
		if t.Entered == 0 {
			continue
		}
		fmt.Printf("  trace %2d: %2d blocks, entered %7d, completed %7d (%.2f%%)\n",
			t.ID, t.Blocks, t.Entered, t.Completed,
			float64(t.Completed)/float64(t.Entered)*100)
	}
}
