package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
)

const fib = `
class Main {
    static int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    static void main() { Sys.printlnInt(fib(18)); }
}`

func TestFacadeCompileAndRun(t *testing.T) {
	prog, err := repro.CompileMiniJava(fib)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	vm, err := repro.NewVM(prog, repro.WithOutput(&out))
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "2584\n" {
		t.Errorf("fib(18) = %q", out.String())
	}
	if err := vm.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
	if vm.Counters().Instrs == 0 {
		t.Error("no instructions counted")
	}
	if len(vm.Traces()) == 0 {
		t.Error("no traces cached in default trace mode")
	}
	if vm.NumBCGNodes() == 0 {
		t.Error("no BCG nodes")
	}
	if !strings.HasPrefix(vm.DumpBCG(1), "digraph") {
		t.Error("DumpBCG not DOT")
	}
}

// TestFacadeOptions exercises the composed option surface: WithParams is
// the single way to tune the profiler (the per-field wrappers are gone).
func TestFacadeOptions(t *testing.T) {
	prog, err := repro.CompileMiniJava(fib)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := repro.NewVM(prog,
		repro.WithMode(repro.ModePlain),
		repro.WithParams(repro.Params{Threshold: 0.95, StartDelay: 1, DecayInterval: 128}),
		repro.WithMaxSteps(100_000_000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.Traces() != nil {
		t.Error("plain mode has traces")
	}
	if vm.DumpBCG(0) != "" || vm.NumBCGNodes() != 0 {
		t.Error("plain mode has a BCG")
	}
}

func TestFacadeAssembler(t *testing.T) {
	prog, err := repro.Assemble(`
.class M
.native static p ( int ) void println_int
.method static main ( ) void
    iconst 11 invokestatic M.p
    return
.end
.end
.entry M main
`)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	vm, err := repro.NewVM(prog, repro.WithMode(repro.ModePlain), repro.WithOutput(&out))
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "11\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestFacadeModuleRoundTrip(t *testing.T) {
	prog, err := repro.CompileMiniJava(fib)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := repro.SaveModule(&buf, prog); err != nil {
		t.Fatal(err)
	}
	loaded, err := repro.LoadModule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	vm, err := repro.NewVM(loaded, repro.WithMode(repro.ModePlain), repro.WithOutput(&out))
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "2584\n" {
		t.Errorf("round-tripped module output = %q", out.String())
	}
}

func TestFacadeWorkloads(t *testing.T) {
	names := repro.WorkloadNames()
	if len(names) != 6 {
		t.Fatalf("workloads = %v", names)
	}
	src, err := repro.WorkloadSource("scimark")
	if err != nil || !strings.Contains(src, "class Main") {
		t.Errorf("WorkloadSource: %v", err)
	}
	if _, err := repro.WorkloadSource("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFacadeMetricsConsistency(t *testing.T) {
	prog, err := repro.CompileMiniJava(fib)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := repro.NewVM(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	m := vm.Metrics()
	if m.Coverage < 0 || m.Coverage > 1 || m.CacheCoverage < m.Coverage {
		t.Errorf("coverage out of range: %+v", m)
	}
	if m.CompletionRate < 0 || m.CompletionRate > 1 {
		t.Errorf("completion out of range: %+v", m)
	}
	for _, tr := range vm.Traces() {
		if tr.Completed > tr.Entered {
			t.Errorf("trace %d completed more than entered", tr.ID)
		}
		if tr.Blocks < 2 {
			t.Errorf("trace %d shorter than 2 blocks", tr.ID)
		}
	}
}

func TestParamsDefaultsAndOverrideOrder(t *testing.T) {
	def := repro.DefaultParams()
	if def.Threshold != 0.97 || def.StartDelay != 64 || def.DecayInterval != 256 {
		t.Fatalf("DefaultParams = %+v", def)
	}
	if def.MaxTraces != 0 || def.MaxCachedBlocks != 0 || def.Breaker.ChurnPerK != 0 {
		t.Fatalf("DefaultParams budgets/breaker not zero: %+v", def)
	}
	if got := repro.ResolvedParams(); got != def {
		t.Errorf("no options: resolved %+v, want defaults %+v", got, def)
	}

	// A partial literal overrides only the fields it names.
	got := repro.ResolvedParams(repro.WithParams(repro.Params{Threshold: 0.9}))
	if got.Threshold != 0.9 || got.StartDelay != 64 || got.DecayInterval != 256 {
		t.Errorf("partial WithParams: %+v", got)
	}

	// Later options win for the fields they set, field-wise.
	got = repro.ResolvedParams(
		repro.WithParams(repro.Params{Threshold: 0.5, MaxTraces: 7}),
		repro.WithParams(repro.Params{Threshold: 0.9}),
	)
	if got.Threshold != 0.9 || got.MaxTraces != 7 {
		t.Errorf("override order: %+v", got)
	}

	// Tier-2 knobs merge field-wise like everything else: CompileTraces is
	// sticky once set, thresholds override only when named.
	got = repro.ResolvedParams(
		repro.WithParams(repro.Params{CompileTraces: true, TierUpDispatches: 32}),
		repro.WithParams(repro.Params{TierDownGuardExits: 5}),
	)
	if !got.CompileTraces || got.TierUpDispatches != 32 || got.TierDownGuardExits != 5 {
		t.Errorf("tier knobs: %+v", got)
	}
	got = repro.ResolvedParams(
		repro.WithParams(repro.Params{CompileTraces: true}),
		repro.WithParams(repro.Params{Threshold: 0.9}),
	)
	if !got.CompileTraces {
		t.Error("CompileTraces dropped by a later unrelated override")
	}
	if def.CompileTraces || def.TierUpDispatches != 0 || def.TierDownGuardExits != 0 {
		t.Errorf("tier-2 not off by default: %+v", def)
	}
}

func TestParamsServiceConfig(t *testing.T) {
	p := repro.Params{
		MaxTraces:          5,
		MaxCachedBlocks:    100,
		CompileTraces:      true,
		TierUpDispatches:   12,
		TierDownGuardExits: 3,
		Breaker:            repro.BreakerConfig{ChurnPerK: 8},
	}
	cfg := p.ServiceConfig()
	if cfg.TraceCache.MaxTraces != 5 || cfg.TraceCache.MaxCachedBlocks != 100 {
		t.Errorf("budgets not mapped: %+v", cfg.TraceCache)
	}
	if !cfg.TraceCache.CompileTraces || cfg.TraceCache.TierUpDispatches != 12 || cfg.TraceCache.TierDownGuardExits != 3 {
		t.Errorf("tier knobs not mapped: %+v", cfg.TraceCache)
	}
	if cfg.Breaker.ChurnPerK != 8 {
		t.Errorf("breaker not mapped: %+v", cfg.Breaker)
	}
}

func TestParamsCacheBudgetApplies(t *testing.T) {
	prog, err := repro.CompileMiniJava(fib)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := repro.NewVM(prog, repro.WithParams(repro.Params{MaxTraces: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if n := len(vm.Traces()); n > 1 {
		t.Errorf("MaxTraces=1 budget ignored: %d live traces", n)
	}
	if vm.Counters().TracesBuilt == 0 {
		t.Error("budgeted run built no traces")
	}
}

func TestFacadeEventTrace(t *testing.T) {
	prog, err := repro.CompileMiniJava(fib)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := repro.NewVM(prog, repro.WithEventTrace(128))
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	evs := vm.Events(128)
	if len(evs) == 0 {
		t.Fatal("traced run emitted no events")
	}
	var sawState, sawBuilt bool
	for i, e := range evs {
		if i > 0 && e.Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order at %d", i)
		}
		switch e.Type {
		case repro.EvNodeState:
			sawState = true
		case repro.EvTraceBuilt:
			sawBuilt = true
		}
	}
	if !sawState || !sawBuilt {
		t.Errorf("missing event kinds: nodeState=%v traceBuilt=%v", sawState, sawBuilt)
	}
	if ring := vm.EventRing(); ring == nil || ring.Total() == 0 {
		t.Error("EventRing not exposed")
	}
	if _, ok := repro.ParseEventType("trace-built"); !ok {
		t.Error("ParseEventType(trace-built) failed")
	}

	// Without the option there is no ring and Events is nil.
	plain, err := repro.NewVM(prog)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Events(10) != nil || plain.EventRing() != nil {
		t.Error("ring present without WithEventTrace")
	}
}
