package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
)

const fib = `
class Main {
    static int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    static void main() { Sys.printlnInt(fib(18)); }
}`

func TestFacadeCompileAndRun(t *testing.T) {
	prog, err := repro.CompileMiniJava(fib)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	vm, err := repro.NewVM(prog, repro.WithOutput(&out))
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "2584\n" {
		t.Errorf("fib(18) = %q", out.String())
	}
	if err := vm.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
	if vm.Counters().Instrs == 0 {
		t.Error("no instructions counted")
	}
	if len(vm.Traces()) == 0 {
		t.Error("no traces cached in default trace mode")
	}
	if vm.NumBCGNodes() == 0 {
		t.Error("no BCG nodes")
	}
	if !strings.HasPrefix(vm.DumpBCG(1), "digraph") {
		t.Error("DumpBCG not DOT")
	}
}

func TestFacadeOptions(t *testing.T) {
	prog, err := repro.CompileMiniJava(fib)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := repro.NewVM(prog,
		repro.WithMode(repro.ModePlain),
		repro.WithThreshold(0.95),
		repro.WithStartDelay(1),
		repro.WithDecayInterval(128),
		repro.WithMaxSteps(100_000_000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.Traces() != nil {
		t.Error("plain mode has traces")
	}
	if vm.DumpBCG(0) != "" || vm.NumBCGNodes() != 0 {
		t.Error("plain mode has a BCG")
	}
}

func TestFacadeAssembler(t *testing.T) {
	prog, err := repro.Assemble(`
.class M
.native static p ( int ) void println_int
.method static main ( ) void
    iconst 11 invokestatic M.p
    return
.end
.end
.entry M main
`)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	vm, err := repro.NewVM(prog, repro.WithMode(repro.ModePlain), repro.WithOutput(&out))
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "11\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestFacadeModuleRoundTrip(t *testing.T) {
	prog, err := repro.CompileMiniJava(fib)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := repro.SaveModule(&buf, prog); err != nil {
		t.Fatal(err)
	}
	loaded, err := repro.LoadModule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	vm, err := repro.NewVM(loaded, repro.WithMode(repro.ModePlain), repro.WithOutput(&out))
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "2584\n" {
		t.Errorf("round-tripped module output = %q", out.String())
	}
}

func TestFacadeWorkloads(t *testing.T) {
	names := repro.WorkloadNames()
	if len(names) != 6 {
		t.Fatalf("workloads = %v", names)
	}
	src, err := repro.WorkloadSource("scimark")
	if err != nil || !strings.Contains(src, "class Main") {
		t.Errorf("WorkloadSource: %v", err)
	}
	if _, err := repro.WorkloadSource("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFacadeMetricsConsistency(t *testing.T) {
	prog, err := repro.CompileMiniJava(fib)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := repro.NewVM(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	m := vm.Metrics()
	if m.Coverage < 0 || m.Coverage > 1 || m.CacheCoverage < m.Coverage {
		t.Errorf("coverage out of range: %+v", m)
	}
	if m.CompletionRate < 0 || m.CompletionRate > 1 {
		t.Errorf("completion out of range: %+v", m)
	}
	for _, tr := range vm.Traces() {
		if tr.Completed > tr.Entered {
			t.Errorf("trace %d completed more than entered", tr.ID)
		}
		if tr.Blocks < 2 {
			t.Errorf("trace %d shorter than 2 blocks", tr.ID)
		}
	}
}
